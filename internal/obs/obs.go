// Package obs is the repository's unified instrumentation layer: a
// zero-dependency (stdlib-only) metrics and tracing substrate shared by every
// DEMON maintainer. The paper's entire evaluation argues from measured
// quantities — bytes fetched per counting strategy, per-phase update cost,
// per-block monitoring latency (Figures 2–10) — so the maintainers record
// those quantities into a process-global Registry that the CLIs and the bench
// harness export as JSON or text snapshots.
//
// Four instrument kinds are provided:
//
//   - Counter: a monotonically increasing atomic int64 (bytes, candidates).
//   - Gauge: a settable atomic int64 (resident sub-clusters, window size).
//   - Histogram: a bounded power-of-two-bucket distribution (latencies,
//     region counts); no allocation on the observe path.
//   - Timer: a Histogram of span durations with Start/End span helpers that
//     support parent/child nesting and an optional tracing hook.
//
// Instruments are named "<subsystem>.<operation>.<unit>" (for example
// "borders.count.ecut.bytes" or "birch.insert.ns"); the full naming scheme is
// documented in README.md.
//
// Cost model: the default registry is disabled until an edge (CLI flag, test,
// bench harness) enables it. A disabled instrument is a single atomic load
// and a branch — no allocation, no clock read — so library code is
// instrumented unconditionally. Tests override the global registry with
// SetDefault and restore the previous one when done.
package obs

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named instruments and the enabled flag they all consult.
// The zero value is not usable; construct with NewRegistry. All methods are
// safe for concurrent use, and every method is nil-receiver-safe so that
// instrument lookups against an absent registry degrade to no-ops.
type Registry struct {
	enabled atomic.Bool

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	timers     map[string]*Timer
	collectors []func(*Registry)

	spanHook atomic.Pointer[func(SpanEvent)]
	tracer   atomic.Pointer[Tracer]

	// runtimeCollector guards RegisterRuntimeCollector against double
	// registration.
	runtimeCollector atomic.Bool
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
	r.enabled.Store(true)
	return r
}

// defaultRegistry is the process-global registry. It starts disabled so that
// library code pays only an atomic load per instrument operation until an
// edge opts in.
var defaultRegistry atomic.Pointer[Registry]

func init() {
	r := NewRegistry()
	r.SetEnabled(false)
	defaultRegistry.Store(r)
}

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry.Load() }

// SetDefault replaces the process-global registry and returns the previous
// one, so tests can install their own and restore on exit:
//
//	prev := obs.SetDefault(obs.NewRegistry())
//	defer obs.SetDefault(prev)
func SetDefault(r *Registry) (prev *Registry) {
	if r == nil {
		r = NewRegistry()
	}
	return defaultRegistry.Swap(r)
}

// Enable turns the process-global registry on and returns it.
func Enable() *Registry {
	r := Default()
	r.SetEnabled(true)
	return r
}

// SetEnabled flips recording on or off. Disabling does not clear recorded
// values.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether instruments record.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// OnSpan installs the tracing hook invoked at every span End. A nil hook
// uninstalls. The hook must be fast and must not call back into the span's
// timer.
func (r *Registry) OnSpan(hook func(SpanEvent)) {
	if r == nil {
		return
	}
	if hook == nil {
		r.spanHook.Store(nil)
		return
	}
	r.spanHook.Store(&hook)
}

// SetTracer installs the request tracer whose traces ctx-aware spans record
// into and /tracez serves from. A nil tracer uninstalls.
func (r *Registry) SetTracer(tc *Tracer) {
	if r == nil {
		return
	}
	if tc == nil {
		r.tracer.Store(nil)
		return
	}
	r.tracer.Store(tc)
}

// Tracer returns the installed request tracer (nil when tracing is not
// configured).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer.Load()
}

// AddCollector registers a callback run at the start of every Snapshot —
// the mechanism bridges use to mirror externally accumulated counters (for
// example diskio.Stats) into the registry at observation time.
func (r *Registry) AddCollector(fn func(*Registry)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{reg: r}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{reg: r}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(r)
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{name: name, reg: r, hist: newHistogram(r)}
		r.timers[name] = t
	}
	return t
}

// Reset zeroes every instrument without dropping registrations, so handles
// held by callers stay live.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, t := range r.timers {
		t.hist.reset()
	}
}

// Counter is a monotonically increasing value.
type Counter struct {
	reg *Registry
	v   atomic.Int64
}

// Add increments the counter by n when the registry records.
func (c *Counter) Add(n int64) {
	if c == nil || !c.reg.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current value.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	reg *Registry
	v   atomic.Int64
}

// Set records v when the registry records.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n when the registry records.
func (g *Gauge) Add(n int64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numBuckets covers the full non-negative int64 range with power-of-two
// buckets: bucket 0 holds values <= 0 and bucket i (i >= 1) holds values in
// [2^(i-1), 2^i - 1].
const numBuckets = 64

// Histogram is a bounded distribution over power-of-two buckets, with exact
// count, sum, min and max. Observing is lock- and allocation-free.
type Histogram struct {
	reg     *Registry
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func newHistogram(r *Registry) *Histogram {
	h := &Histogram{reg: r}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	return h
}

// BucketIndex returns the bucket an observation lands in: 0 for v <= 0,
// otherwise 1 + floor(log2(v)).
func BucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpperBound returns the largest value bucket i holds (0 for bucket 0,
// 2^i - 1 otherwise).
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value when the registry records.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.reg.enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[BucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(int64(^uint64(0) >> 1))
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Timer aggregates span durations into a nanosecond histogram.
type Timer struct {
	name string
	reg  *Registry
	hist *Histogram
}

// Name returns the timer's registered name.
func (t *Timer) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Count returns the number of completed spans.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.hist.Count()
}

// Total returns the accumulated span time.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.hist.Sum())
}

// Record adds an already-measured duration to the timer, for call sites that
// must keep their own clock reading (for example phase times that also feed
// the paper's figures) regardless of whether the registry records.
func (t *Timer) Record(d time.Duration) {
	if t == nil {
		return
	}
	t.hist.Observe(int64(d))
}

// Start opens a span against the timer. When the registry is disabled the
// returned zero span skips the clock read entirely; End on it is a no-op.
func (t *Timer) Start() Span {
	if t == nil || !t.reg.enabled.Load() {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// Child opens a span against t nested under parent, so the tracing hook sees
// the phase structure (for example borders.addblock → borders.update →
// borders.count.ecut). When the parent belongs to a request trace the child
// joins the same trace under the parent's span ID.
func (t *Timer) Child(parent Span) Span {
	s := t.Start()
	if s.t != nil && parent.t != nil {
		s.parent = parent.t.name
	}
	if s.t != nil && parent.tr != nil {
		s.tr = parent.tr
		s.parentID = parent.spanID
		s.spanID = parent.tr.newSpanID()
	}
	return s
}

// StartSpan opens a span against the timer attached to the given span
// context: its duration lands in the timer's histogram as usual, and — when
// sc belongs to a sampled trace — in the trace's event ring as a child of
// sc's span. An untraced sc behaves exactly like Start.
func (t *Timer) StartSpan(sc SpanContext) Span {
	s := t.Start()
	if s.t != nil && sc.tr != nil {
		s.tr = sc.tr
		s.parentID = sc.spanID
		s.spanID = sc.tr.newSpanID()
	}
	return s
}

// StartCtx is StartSpan against the span context carried by ctx — the usual
// entry point for code that already threads a context.
func (t *Timer) StartCtx(ctx context.Context) Span {
	return t.StartSpan(SpanContextFrom(ctx))
}

// Span is one in-flight timed phase. It is a value type: starting and ending
// a span never allocates unless it joined a request trace.
type Span struct {
	t      *Timer
	parent string
	start  time.Time

	// Trace attachment, set by StartSpan/StartCtx/Child; nil outside traces.
	tr       *Trace
	spanID   uint64
	parentID uint64
}

// SpanContext returns the span's position in its request trace, for
// parenting further work under this span (the zero SpanContext when the span
// is untraced).
func (s Span) SpanContext() SpanContext {
	if s.tr == nil {
		return SpanContext{}
	}
	return SpanContext{tr: s.tr, spanID: s.spanID}
}

// Ctx returns ctx carrying this span's context, so callees parent under it.
func (s Span) Ctx(ctx context.Context) context.Context {
	return s.SpanContext().Context(ctx)
}

// SpanEvent is what the tracing hook receives at span End.
type SpanEvent struct {
	// Name is the span's timer name; Parent is the enclosing span's timer
	// name ("" at the root).
	Name, Parent string
	Start        time.Time
	Duration     time.Duration
}

// End closes the span, records its duration, and fires the tracing hook if
// installed. It returns the measured duration (0 for a disabled span).
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.hist.Observe(int64(d))
	s.tr.record(s.t.name, s.spanID, s.parentID, s.start, d)
	if hp := s.t.reg.spanHook.Load(); hp != nil {
		(*hp)(SpanEvent{Name: s.t.name, Parent: s.parent, Start: s.start, Duration: d})
	}
	return d
}

// EndObserving closes the span like End and additionally adds n to the given
// counter — the common "this phase processed n units" idiom.
func (s Span) EndObserving(c *Counter, n int64) time.Duration {
	c.Add(n)
	return s.End()
}

// Label normalizes a display name into the metric-name alphabet: letters and
// digits are lowercased, '+' becomes "plus", and every other byte is dropped,
// so "PT-Scan" → "ptscan" and "ECUT+" → "ecutplus".
func Label(s string) string {
	out := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == '+':
			out = append(out, "plus"...)
		}
	}
	return string(out)
}
