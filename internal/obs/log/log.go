// Package log is the repository's zero-dependency leveled structured logger.
// It exists because the serving layer needs machine-readable, trace-stamped
// diagnostics (one line per event, JSON or logfmt-style text) without pulling
// in a logging framework, and because ad-hoc fmt.Printf lines can neither be
// filtered by level nor correlated with the request traces in internal/obs.
//
// Design points, mirroring the obs cost model:
//
//   - A disabled logger (level above the call's) is one atomic load and a
//     branch; passing no attrs allocates nothing (verified by a zero-alloc
//     test like the PR 2 obs ones).
//   - Attrs are flat alternating key/value pairs ("ns", name, "block", 7) —
//     no Field structs to construct on the caller side.
//   - Error-level records are rate-limited per (logger, second) window so a
//     failing dependency cannot flood the sink; suppressed counts are
//     reported on the next emitted error.
//   - Records carry the trace ID from a context when logged via the *Ctx
//     variants, tying log lines to /tracez entries.
package log

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/demon-mining/demon/internal/obs"
)

// Level is the severity of a record. The numeric values match log/slog so
// future interop is trivial.
type Level int

const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

// String returns the canonical upper-case level name.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "DEBUG"
	case l <= LevelInfo:
		return "INFO"
	case l <= LevelWarn:
		return "WARN"
	default:
		return "ERROR"
	}
}

// ParseLevel maps a flag string ("debug", "info", "warn", "error",
// case-insensitive) to a Level.
func ParseLevel(s string) (Level, error) {
	switch lower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("log: unknown level %q (want debug|info|warn|error)", s)
}

// Format selects the wire encoding of records.
type Format int

const (
	// FormatText emits logfmt-style lines: ts=... level=... msg=... k=v.
	FormatText Format = iota
	// FormatJSON emits one JSON object per line.
	FormatJSON
)

// ParseFormat maps a flag string ("text" or "json") to a Format.
func ParseFormat(s string) (Format, error) {
	switch lower(s) {
	case "text", "":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("log: unknown format %q (want text|json)", s)
}

func lower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if b[j] >= 'A' && b[j] <= 'Z' {
					b[j] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

// errorWindow is the rate-limit window for error-level records.
const errorWindow = time.Second

// maxErrorsPerWindow caps error-level records emitted per window; the rest
// are counted and reported as suppressed=N on the next emitted error.
const maxErrorsPerWindow = 10

// Logger writes leveled structured records to one sink. Safe for concurrent
// use; nil-receiver-safe so optional loggers degrade to no-ops.
type Logger struct {
	level  atomic.Int64
	format Format

	mu sync.Mutex // serializes writes and guards the rate-limit state
	w  io.Writer

	// attrs are key/value pairs stamped on every record (from With).
	attrs []any

	// parent is the root logger owning the sink mutex and error budget;
	// nil on root loggers, set on With-derived children.
	parent *Logger

	// Error rate limiting.
	winStart   time.Time
	winCount   int
	suppressed int64

	// clock is stubbed in tests.
	clock func() time.Time
}

// New returns a logger writing to w at the given level and format.
func New(w io.Writer, level Level, format Format) *Logger {
	l := &Logger{format: format, w: w, clock: time.Now}
	l.level.Store(int64(level))
	return l
}

// defaultLogger is the process-global logger: stderr, info, text.
var defaultLogger atomic.Pointer[Logger]

func init() {
	defaultLogger.Store(New(os.Stderr, LevelInfo, FormatText))
}

// Default returns the process-global logger.
func Default() *Logger { return defaultLogger.Load() }

// SetDefault replaces the process-global logger and returns the previous
// one, so tests can install their own and restore on exit.
func SetDefault(l *Logger) (prev *Logger) {
	if l == nil {
		l = New(io.Discard, LevelError, FormatText)
	}
	return defaultLogger.Swap(l)
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int64(level))
}

// Level returns the minimum emitted level.
func (l *Logger) Level() Level {
	if l == nil {
		return LevelError + 1
	}
	return Level(l.level.Load())
}

// Enabled reports whether a record at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int64(level) >= l.level.Load()
}

// With returns a logger that stamps the given alternating key/value pairs on
// every record. The child shares the parent's sink, level, and error budget.
func (l *Logger) With(attrs ...any) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	child := &Logger{format: l.format, w: l.w, clock: l.clock}
	child.level.Store(l.level.Load())
	child.attrs = append(append([]any{}, l.attrs...), attrs...)
	// Share the parent's mutex-guarded state by writing through the parent.
	child.parent = rootOf(l)
	return child
}

// parent points a With-derived logger at the root that owns the sink mutex
// and rate-limit window, so all children share one serialized writer.
func rootOf(l *Logger) *Logger {
	if l.parent != nil {
		return l.parent
	}
	return l
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, attrs ...any) { l.log(nil, LevelDebug, msg, attrs) }

// Info logs at info level.
func (l *Logger) Info(msg string, attrs ...any) { l.log(nil, LevelInfo, msg, attrs) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, attrs ...any) { l.log(nil, LevelWarn, msg, attrs) }

// Error logs at error level (rate-limited; see package docs).
func (l *Logger) Error(msg string, attrs ...any) { l.log(nil, LevelError, msg, attrs) }

// DebugCtx logs at debug level, stamping the trace ID carried by ctx.
func (l *Logger) DebugCtx(ctx context.Context, msg string, attrs ...any) {
	l.log(ctx, LevelDebug, msg, attrs)
}

// InfoCtx logs at info level, stamping the trace ID carried by ctx.
func (l *Logger) InfoCtx(ctx context.Context, msg string, attrs ...any) {
	l.log(ctx, LevelInfo, msg, attrs)
}

// WarnCtx logs at warn level, stamping the trace ID carried by ctx.
func (l *Logger) WarnCtx(ctx context.Context, msg string, attrs ...any) {
	l.log(ctx, LevelWarn, msg, attrs)
}

// ErrorCtx logs at error level, stamping the trace ID carried by ctx.
func (l *Logger) ErrorCtx(ctx context.Context, msg string, attrs ...any) {
	l.log(ctx, LevelError, msg, attrs)
}

func (l *Logger) log(ctx context.Context, level Level, msg string, attrs []any) {
	if l == nil || int64(level) < l.level.Load() {
		return
	}
	root := rootOf(l)

	var traceID string
	if ctx != nil {
		traceID = obs.SpanContextFrom(ctx).TraceID()
	}

	root.mu.Lock()
	defer root.mu.Unlock()

	now := root.clockNow()
	var suppressed int64
	if level >= LevelError {
		if now.Sub(root.winStart) >= errorWindow {
			root.winStart = now
			root.winCount = 0
		}
		root.winCount++
		if root.winCount > maxErrorsPerWindow {
			root.suppressed++
			return
		}
		suppressed, root.suppressed = root.suppressed, 0
	}

	buf := make([]byte, 0, 256)
	if l.format == FormatJSON {
		buf = appendJSONRecord(buf, now, level, msg, traceID, suppressed, l.attrs, attrs)
	} else {
		buf = appendTextRecord(buf, now, level, msg, traceID, suppressed, l.attrs, attrs)
	}
	buf = append(buf, '\n')
	root.w.Write(buf) //nolint:errcheck // a failing log sink must not fail the caller
}

func (l *Logger) clockNow() time.Time {
	if l.clock != nil {
		return l.clock()
	}
	return time.Now()
}

// appendTextRecord emits logfmt-style: ts=RFC3339 level=INFO msg="..." k=v.
func appendTextRecord(buf []byte, now time.Time, level Level, msg, traceID string, suppressed int64, base, attrs []any) []byte {
	buf = append(buf, "ts="...)
	buf = now.UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, " level="...)
	buf = append(buf, level.String()...)
	buf = append(buf, " msg="...)
	buf = appendTextValue(buf, msg)
	if traceID != "" {
		buf = append(buf, " trace="...)
		buf = append(buf, traceID...)
	}
	if suppressed > 0 {
		buf = append(buf, " suppressed="...)
		buf = strconv.AppendInt(buf, suppressed, 10)
	}
	for _, kv := range [2][]any{base, attrs} {
		for i := 0; i+1 < len(kv); i += 2 {
			buf = append(buf, ' ')
			buf = append(buf, attrKey(kv[i])...)
			buf = append(buf, '=')
			buf = appendTextValue(buf, kv[i+1])
		}
	}
	return buf
}

// appendJSONRecord emits one JSON object:
// {"ts":"...","level":"INFO","msg":"...","trace":"...","k":v}.
func appendJSONRecord(buf []byte, now time.Time, level Level, msg, traceID string, suppressed int64, base, attrs []any) []byte {
	buf = append(buf, `{"ts":"`...)
	buf = now.UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSONString(buf, msg)
	if traceID != "" {
		buf = append(buf, `,"trace":`...)
		buf = appendJSONString(buf, traceID)
	}
	if suppressed > 0 {
		buf = append(buf, `,"suppressed":`...)
		buf = strconv.AppendInt(buf, suppressed, 10)
	}
	for _, kv := range [2][]any{base, attrs} {
		for i := 0; i+1 < len(kv); i += 2 {
			buf = append(buf, ',')
			buf = appendJSONString(buf, attrKey(kv[i]))
			buf = append(buf, ':')
			buf = appendJSONValue(buf, kv[i+1])
		}
	}
	return append(buf, '}')
}

// attrKey coerces an attr key to a string without fmt for the common case.
func attrKey(k any) string {
	if s, ok := k.(string); ok {
		return s
	}
	return fmt.Sprint(k)
}

// appendTextValue appends a logfmt value, quoting only when needed.
func appendTextValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		if textNeedsQuote(x) {
			return strconv.AppendQuote(buf, x)
		}
		return append(buf, x...)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case bool:
		return strconv.AppendBool(buf, x)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case time.Duration:
		return append(buf, x.String()...)
	case error:
		return appendTextValue(buf, x.Error())
	case nil:
		return append(buf, "null"...)
	default:
		return appendTextValue(buf, fmt.Sprint(x))
	}
}

func textNeedsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; c <= ' ' || c == '"' || c == '=' || c >= 0x7f {
			return true
		}
	}
	return false
}

// appendJSONValue appends a JSON-encoded attr value.
func appendJSONValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case bool:
		return strconv.AppendBool(buf, x)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case time.Duration:
		return appendJSONString(buf, x.String())
	case error:
		return appendJSONString(buf, x.Error())
	case nil:
		return append(buf, "null"...)
	default:
		return appendJSONString(buf, fmt.Sprint(x))
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends a JSON string literal. strconv.Quote is not
// usable here: it emits \x.. escapes for control bytes, which is invalid
// JSON. Non-UTF-8 bytes are escaped as �-free \u00XX so output stays
// parseable regardless of input.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
