package log

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/demon-mining/demon/internal/obs"
)

func TestParseLevelAndFormat(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "Error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) accepted")
	}
	if f, err := ParseFormat("JSON"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(JSON) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat(xml) accepted")
	}
}

func TestLevelFiltering(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelWarn, FormatText)
	l.Debug("no")
	l.Info("no")
	l.Warn("yes")
	l.Error("also")
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=WARN") || !strings.Contains(lines[1], "level=ERROR") {
		t.Errorf("filtered output:\n%s", sb.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with filtering")
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Error("SetLevel did not lower the threshold")
	}
}

// TestJSONRecordsParse feeds hostile values — quotes, newlines, control
// bytes, non-string keys — and requires every emitted line to be valid JSON
// with the attrs intact.
func TestJSONRecordsParse(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelDebug, FormatJSON)
	l.Info(`msg with "quotes" and`+"\nnewline",
		"str", "tab\there", "ctl", string([]byte{0x01, 0x1f}),
		"n", 42, "f", 1.5, "b", true, "dur", 250*time.Millisecond,
		"err", errors.New(`boom "quoted"`), "nil", nil, 7, "non-string-key")
	l.With("ns", "retail").Warn("child")

	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
		switch rec["level"] {
		case "INFO":
			if rec["str"] != "tab\there" || rec["ctl"] != "\x01\x1f" {
				t.Errorf("string attrs mangled: %v", rec)
			}
			if rec["n"] != float64(42) || rec["b"] != true || rec["dur"] != "250ms" {
				t.Errorf("scalar attrs mangled: %v", rec)
			}
			if rec["err"] != `boom "quoted"` || rec["nil"] != nil || rec["7"] != "non-string-key" {
				t.Errorf("edge attrs mangled: %v", rec)
			}
		case "WARN":
			if rec["ns"] != "retail" || rec["msg"] != "child" {
				t.Errorf("With attrs missing: %v", rec)
			}
		}
		if _, err := time.Parse(time.RFC3339Nano, rec["ts"].(string)); err != nil {
			t.Errorf("bad ts %v: %v", rec["ts"], err)
		}
	}
}

func TestTextQuoting(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelInfo, FormatText)
	l.Info("plain", "a", "bare", "b", "needs quoting", "c", "eq=sign")
	line := sb.String()
	if !strings.Contains(line, "a=bare") {
		t.Errorf("bare value quoted: %s", line)
	}
	if !strings.Contains(line, `b="needs quoting"`) || !strings.Contains(line, `c="eq=sign"`) {
		t.Errorf("unsafe values not quoted: %s", line)
	}
}

func TestTraceStamping(t *testing.T) {
	reg := obs.NewRegistry()
	tc := obs.NewTracer(4, 0)
	reg.SetTracer(tc)
	tr := tc.StartTrace("trace-42", "test")
	ctx := obs.ContextWithTrace(context.Background(), tr)

	var sb strings.Builder
	l := New(&sb, LevelInfo, FormatJSON)
	l.InfoCtx(ctx, "traced")
	l.InfoCtx(context.Background(), "untraced")

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first["trace"] != "trace-42" {
		t.Errorf("trace not stamped: %v", first)
	}
	if _, ok := second["trace"]; ok {
		t.Errorf("untraced record carries a trace field: %v", second)
	}
}

// TestErrorRateLimit drives a stubbed clock: 25 errors in one window emit 10,
// the window rolls, and the next emitted error reports suppressed=15.
func TestErrorRateLimit(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelInfo, FormatText)
	now := time.Unix(1000, 0)
	l.clock = func() time.Time { return now }

	for i := 0; i < 25; i++ {
		l.Error("boom")
	}
	if got := strings.Count(sb.String(), "level=ERROR"); got != maxErrorsPerWindow {
		t.Fatalf("window emitted %d errors, want %d", got, maxErrorsPerWindow)
	}
	// Warn and below are not budgeted.
	l.Warn("not limited")
	if !strings.Contains(sb.String(), "level=WARN") {
		t.Error("warn suppressed by the error budget")
	}

	now = now.Add(errorWindow)
	sb.Reset()
	l.Error("after window")
	out := sb.String()
	if !strings.Contains(out, "suppressed=15") {
		t.Errorf("suppressed count not reported: %s", out)
	}
	sb.Reset()
	l.Error("second in new window")
	if strings.Contains(sb.String(), "suppressed") {
		t.Errorf("suppressed count reported twice: %s", sb.String())
	}
}

// TestWithSharesErrorBudget: a With-derived child draws from the root's
// window, so a flooding subsystem cannot dodge the limit via l.With(...).
func TestWithSharesErrorBudget(t *testing.T) {
	var sb strings.Builder
	root := New(&sb, LevelInfo, FormatText)
	now := time.Unix(2000, 0)
	root.clock = func() time.Time { return now }
	child := root.With("ns", "retail")

	for i := 0; i < maxErrorsPerWindow; i++ {
		root.Error("root")
	}
	sb.Reset()
	child.Error("child over budget")
	if sb.String() != "" {
		t.Errorf("child escaped the shared error budget: %s", sb.String())
	}
}

// TestDisabledCallAllocatesNothing mirrors the obs zero-alloc tests: a
// filtered-out record costs an atomic load, even with scalar attrs.
func TestDisabledCallAllocatesNothing(t *testing.T) {
	l := New(nil, LevelError, FormatText)
	if allocs := testing.AllocsPerRun(100, func() {
		l.Debug("dropped")
	}); allocs != 0 {
		t.Errorf("disabled no-attr call allocates %v per op", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		l.Info("dropped", "k", 1, "ok", true)
	}); allocs != 0 {
		t.Errorf("disabled attr call allocates %v per op", allocs)
	}
	var nilLogger *Logger
	if allocs := testing.AllocsPerRun(100, func() {
		nilLogger.Error("dropped")
	}); allocs != 0 {
		t.Errorf("nil logger allocates %v per op", allocs)
	}
}

func TestSetDefaultSwapRestore(t *testing.T) {
	var sb strings.Builder
	mine := New(&sb, LevelInfo, FormatText)
	prev := SetDefault(mine)
	defer SetDefault(prev)
	if Default() != mine {
		t.Fatal("SetDefault did not install")
	}
	Default().Info("hello")
	if !strings.Contains(sb.String(), "msg=hello") {
		t.Errorf("default logger did not write: %q", sb.String())
	}
	SetDefault(nil) // nil degrades to a discard logger, never panics
	Default().Info("discarded")
	SetDefault(mine)
}
