package log

import (
	"flag"
	"os"

	"github.com/demon-mining/demon/internal/obs"
)

// CLI holds the observability flag values shared by every cmd/ binary:
// -log-level, -log-format, and -trace-sample. Register on a FlagSet before
// Parse, then Apply once after.
type CLI struct {
	Level       string
	Format      string
	TraceSample float64
}

// RegisterFlags binds the shared observability flags to fs and returns the
// holder to Apply after parsing.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.Level, "log-level", "info", "minimum log level: debug|info|warn|error")
	fs.StringVar(&c.Format, "log-format", "text", "log encoding: text|json")
	fs.Float64Var(&c.TraceSample, "trace-sample", 0,
		"fraction of requests to trace when no X-Demon-Trace-Id is supplied (0..1; explicit IDs always trace)")
	return c
}

// Apply configures the process-global logger from the parsed flag values and
// installs a request tracer on reg (skipped when reg is nil). It returns the
// configured logger.
func (c *CLI) Apply(reg *obs.Registry) (*Logger, error) {
	level, err := ParseLevel(c.Level)
	if err != nil {
		return nil, err
	}
	format, err := ParseFormat(c.Format)
	if err != nil {
		return nil, err
	}
	l := New(os.Stderr, level, format)
	SetDefault(l)
	if reg != nil {
		reg.SetTracer(obs.NewTracer(obs.DefaultTraceCapacity, c.TraceSample))
	}
	return l, nil
}
