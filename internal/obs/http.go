package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"

	"github.com/demon-mining/demon/internal/version"
)

// WriteJSONError writes a structured JSON error body ({"error": msg}) with
// the given status — the error shape every endpoint in the repo uses.
func WriteJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Handler serves the registry's current snapshot: Prometheus text exposition
// for ?format=prometheus, JSON when the request asks for it (?format=json or
// an Accept: application/json header), aligned text otherwise.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format := req.URL.Query().Get("format")
		snap := r.Snapshot()
		switch {
		case format == "prometheus" || format == "openmetrics":
			w.Header().Set("Content-Type", PromContentType)
			_ = snap.WritePrometheus(w)
		case format == "json" || req.Header.Get("Accept") == "application/json":
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
		case format == "" || format == "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
		default:
			WriteJSONError(w, http.StatusBadRequest,
				"unknown format "+strconv.Quote(format)+" (want text|json|prometheus)")
		}
	})
}

// TraceHandler serves the registry's recent-trace ring as JSON: all retained
// traces newest-first (bounded by ?limit=N), or one trace by ?id=. Useful
// fields per trace: spans in recording order and a slowest-span summary.
func TraceHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tc := r.Tracer()
		if id := req.URL.Query().Get("id"); id != "" {
			tr := tc.Lookup(id)
			if tr == nil {
				WriteJSONError(w, http.StatusNotFound, "no retained trace with id "+strconv.Quote(id))
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(tr.Snapshot())
			return
		}
		limit := 0
		if s := req.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				WriteJSONError(w, http.StatusBadRequest, "limit must be a non-negative integer")
				return
			}
			limit = n
		}
		traces := tc.Snapshot(limit)
		if traces == nil {
			traces = []TraceSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			SampleRate float64         `json:"sample_rate"`
			Traces     []TraceSnapshot `json:"traces"`
		}{SampleRate: tc.SampleRate(), Traces: traces})
	})
}

// HealthHandler answers liveness probes with 200 "ok".
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
}

// VersionHandler serves the binary's build identity (module version + VCS
// revision) as JSON.
func VersionHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = version.Get().WriteJSON(w)
	})
}

// DebugMux returns the mux the CLIs serve on -pprof-addr: the registry
// snapshot at /metricsz, liveness at /healthz, the build identity at
// /versionz, and the runtime profiles under /debug/pprof/.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metricsz", Handler(r))
	mux.Handle("/tracez", TraceHandler(r))
	mux.Handle("/healthz", HealthHandler())
	mux.Handle("/versionz", VersionHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for DebugMux(r) on addr in a background
// goroutine. It returns once the listener is bound so callers can fail fast
// on a bad address; serve errors after that are ignored (the process is
// exiting anyway when the listener closes).
func Serve(addr string, r *Registry) error {
	srv := &http.Server{Addr: addr, Handler: DebugMux(r)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Dump writes the registry's snapshot as JSON to path.
func Dump(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
