package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"github.com/demon-mining/demon/internal/version"
)

// Handler serves the registry's current snapshot: JSON when the request asks
// for it (?format=json or an Accept: application/json header), aligned text
// otherwise.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" || req.Header.Get("Accept") == "application/json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteText(w)
	})
}

// HealthHandler answers liveness probes with 200 "ok".
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
}

// VersionHandler serves the binary's build identity (module version + VCS
// revision) as JSON.
func VersionHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = version.Get().WriteJSON(w)
	})
}

// DebugMux returns the mux the CLIs serve on -pprof-addr: the registry
// snapshot at /metricsz, liveness at /healthz, the build identity at
// /versionz, and the runtime profiles under /debug/pprof/.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metricsz", Handler(r))
	mux.Handle("/healthz", HealthHandler())
	mux.Handle("/versionz", VersionHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for DebugMux(r) on addr in a background
// goroutine. It returns once the listener is bound so callers can fail fast
// on a bad address; serve errors after that are ignored (the process is
// exiting anyway when the listener closes).
func Serve(addr string, r *Registry) error {
	srv := &http.Server{Addr: addr, Handler: DebugMux(r)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Dump writes the registry's snapshot as JSON to path.
func Dump(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
