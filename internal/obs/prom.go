package obs

// Prometheus / OpenMetrics text exposition for Snapshot, served from
// /metricsz?format=prometheus. The registry's internal naming stays
// "<subsystem>.<operation>.<unit>" with an optional "|k=v,k2=v2" label
// suffix (for example "serve.queue.depth|ns=retail"); this file is the only
// place that convention is parsed. Mapping rules:
//
//   - Family names gain a "demon_" prefix; '.' and '-' become '_' and any
//     byte outside [a-zA-Z0-9_] is dropped.
//   - Counters expose "<family>_total".
//   - Timers (named "*.ns") become "<family>_seconds" histograms: bucket
//     bounds and sums are scaled by 1e-9 so scrapers see base units.
//   - Histograms and timers expose cumulative "_bucket{le=...}" series
//     (the registry stores per-bucket counts), plus "_sum" and "_count".
//   - Label values are escaped per the exposition format: \ → \\, " → \",
//     newline → \n.
//
// The output is sorted (families, then label sets) so equal snapshots render
// byte-identically, ends with "# EOF", and parses under both the classic
// text format and OpenMetrics.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type for the exposition output.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promLabel is one parsed instrument label.
type promLabel struct{ k, v string }

// splitInstrumentName parses "base|k=v,k2=v2" into the base name and its
// labels. Malformed pairs (no '=') are dropped rather than corrupting the
// exposition.
func splitInstrumentName(name string) (string, []promLabel) {
	i := strings.IndexByte(name, '|')
	if i < 0 {
		return name, nil
	}
	base := name[:i]
	var labels []promLabel
	for _, pair := range strings.Split(name[i+1:], ",") {
		if k, v, ok := strings.Cut(pair, "="); ok && k != "" {
			labels = append(labels, promLabel{k: promName(k, ""), v: v})
		}
	}
	return base, labels
}

// promName mangles a registry name into the Prometheus metric-name alphabet
// with the given prefix ("demon_" for families, "" for label keys). A name
// that mangles to "" or starts with a digit gets a '_' spine so the output
// always parses.
func promName(name, prefix string) string {
	out := make([]byte, 0, len(prefix)+len(name))
	out = append(out, prefix...)
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		case c == '.', c == '-':
			out = append(out, '_')
		}
	}
	if len(out) == len(prefix) || (out[0] >= '0' && out[0] <= '9') {
		out = append([]byte{'_'}, out...)
	}
	return string(out)
}

// appendEscapedLabelValue escapes a label value per the exposition format.
func appendEscapedLabelValue(buf []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// renderLabels renders a (sorted, escaped) label block: {k="v",k2="v2"} or
// "" when empty.
func renderLabels(labels []promLabel) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]promLabel, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].k < sorted[j].k })
	buf := []byte{'{'}
	for i, l := range sorted {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, l.k...)
		buf = append(buf, '=', '"')
		buf = appendEscapedLabelValue(buf, l.v)
		buf = append(buf, '"')
	}
	return string(append(buf, '}'))
}

// promSeries is one instrument's rendered sample lines within a family.
type promSeries struct {
	labels string // sort key within the family
	lines  []string
}

// promFamily collects all series sharing one exposition family.
type promFamily struct {
	name   string
	typ    string // counter | gauge | histogram
	help   string
	series []promSeries
}

// formatSeconds renders a nanosecond quantity in seconds with enough digits
// to round-trip.
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// histSeries renders one histogram instrument as cumulative _bucket/_sum/
// _count lines. The snapshot stores only occupied per-bucket counts in
// increasing Le order; cumulation happens here. seconds selects 1e-9
// scaling for timer families.
func histSeries(family, labels string, count, sum int64, buckets []BucketCount, seconds bool) promSeries {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	withLe := func(le string) string {
		if inner == "" {
			return `{le="` + le + `"}`
		}
		return "{" + inner + `,le="` + le + `"}`
	}
	var lines []string
	var cum int64
	for _, b := range buckets {
		cum += b.Count
		le := strconv.FormatInt(b.Le, 10)
		if seconds {
			le = formatSeconds(b.Le)
		}
		lines = append(lines, family+"_bucket"+withLe(le)+" "+strconv.FormatInt(cum, 10))
	}
	lines = append(lines, family+"_bucket"+withLe("+Inf")+" "+strconv.FormatInt(count, 10))
	sumStr := strconv.FormatInt(sum, 10)
	if seconds {
		sumStr = formatSeconds(sum)
	}
	lines = append(lines,
		family+"_sum"+labels+" "+sumStr,
		family+"_count"+labels+" "+strconv.FormatInt(count, 10))
	return promSeries{labels: labels, lines: lines}
}

// WritePrometheus renders the snapshot in Prometheus text exposition format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	families := make(map[string]*promFamily)
	add := func(base, typ string, series promSeries) {
		key := promName(base, "demon_")
		f := families[key]
		if f == nil {
			f = &promFamily{name: key, typ: typ, help: "DEMON " + typ + " " + base}
			families[key] = f
		}
		f.series = append(f.series, series)
	}

	for name, v := range s.Counters {
		base, labels := splitInstrumentName(name)
		lb := renderLabels(labels)
		fam := promName(base, "demon_")
		add(base, "counter", promSeries{labels: lb,
			lines: []string{fam + "_total" + lb + " " + strconv.FormatInt(v, 10)}})
	}
	for name, v := range s.Gauges {
		base, labels := splitInstrumentName(name)
		lb := renderLabels(labels)
		fam := promName(base, "demon_")
		add(base, "gauge", promSeries{labels: lb,
			lines: []string{fam + lb + " " + strconv.FormatInt(v, 10)}})
	}
	for name, h := range s.Histograms {
		base, labels := splitInstrumentName(name)
		lb := renderLabels(labels)
		fam := promName(base, "demon_")
		add(base, "histogram", histSeries(fam, lb, h.Count, h.Sum, h.Buckets, false))
	}
	for name, t := range s.Timers {
		base, labels := splitInstrumentName(name)
		lb := renderLabels(labels)
		// Timers record nanoseconds under a ".ns" suffix; expose seconds.
		secBase := strings.TrimSuffix(base, ".ns") + ".seconds"
		fam := promName(secBase, "demon_")
		add(secBase, "histogram", histSeries(fam, lb, t.Count, t.TotalNs, t.Buckets, true))
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range names {
		f := families[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		// The TYPE line names the family; counter samples carry _total.
		sample := f.name
		if f.typ == "counter" {
			sample = f.name + "_total"
		}
		p("# HELP %s %s\n", sample, f.help)
		p("# TYPE %s %s\n", sample, f.typ)
		for _, se := range f.series {
			for _, line := range se.lines {
				p("%s\n", line)
			}
		}
	}
	p("# EOF\n")
	return err
}
