package obs

import (
	"strings"
	"testing"
	"time"
)

// promLines renders the snapshot and splits it into lines.
func promLines(t *testing.T, s Snapshot) []string {
	t.Helper()
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n%s", out)
	}
	return strings.Split(strings.TrimSuffix(out, "\n"), "\n")
}

// parseSample splits a non-comment exposition line into series (name plus
// label block) and value.
func parseSample(t *testing.T, line string) (series, value string) {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		t.Fatalf("malformed sample line %q", line)
	}
	return line[:i], line[i+1:]
}

func TestPromNameMangling(t *testing.T) {
	for in, want := range map[string]string{
		"miner.blocks":       "demon_miner_blocks",
		"gemm.slot_updates":  "demon_gemm_slot_updates",
		"serve-queue.depth":  "demon_serve_queue_depth",
		"weird name!":        "demon_weirdname",
		"":                   "_demon_",
		"9starts.with.digit": "demon_9starts_with_digit",
		"UPPER.case":         "demon_UPPER_case",
	} {
		if got := promName(in, "demon_"); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	// Label keys use the empty prefix; a digit-leading key still gets a spine.
	if got := promName("9key", ""); got != "_9key" {
		t.Errorf("promName(9key, \"\") = %q", got)
	}
}

func TestPromLabelParsingAndEscaping(t *testing.T) {
	base, labels := splitInstrumentName(`serve.queue.depth|ns=a"b\c` + "\n" + `d,kind=itemset`)
	if base != "serve.queue.depth" {
		t.Fatalf("base = %q", base)
	}
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}
	rendered := renderLabels(labels)
	want := `{kind="itemset",ns="a\"b\\c\nd"}`
	if rendered != want {
		t.Errorf("renderLabels = %q, want %q", rendered, want)
	}

	// Malformed pairs (no '=') are dropped, not emitted broken.
	_, labels = splitInstrumentName("x|oops,k=v")
	if len(labels) != 1 || labels[0].k != "k" {
		t.Errorf("malformed pair not dropped: %v", labels)
	}

	// No '|' means no labels.
	base, labels = splitInstrumentName("plain.name")
	if base != "plain.name" || labels != nil {
		t.Errorf("plain name parsed as %q %v", base, labels)
	}
}

func TestPromCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("miner.blocks").Add(7)
	r.Gauge("serve.queue.depth|ns=retail").Set(3)
	r.Gauge("serve.queue.depth|ns=ads").Set(5)

	lines := promLines(t, r.Snapshot())
	var samples []string
	typeFor := map[string]string{}
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typeFor[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		samples = append(samples, line)
	}
	if typeFor["demon_miner_blocks_total"] != "counter" {
		t.Errorf("counter TYPE line missing or wrong: %v", typeFor)
	}
	if typeFor["demon_serve_queue_depth"] != "gauge" {
		t.Errorf("gauge TYPE line missing or wrong: %v", typeFor)
	}

	bySeries := map[string]string{}
	for _, s := range samples {
		series, v := parseSample(t, s)
		bySeries[series] = v
	}
	if bySeries["demon_miner_blocks_total"] != "7" {
		t.Errorf("counter sample: %v", bySeries)
	}
	if bySeries[`demon_serve_queue_depth{ns="retail"}`] != "3" ||
		bySeries[`demon_serve_queue_depth{ns="ads"}`] != "5" {
		t.Errorf("labeled gauge samples: %v", bySeries)
	}
}

// TestPromHistogramCumulative checks bucket series are cumulative,
// monotonically non-decreasing, and capped by the +Inf bucket == _count.
func TestPromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("miner.candidates")
	for _, v := range []int64{1, 2, 3, 100, 1000, 1000000} {
		h.Observe(v)
	}
	tm := r.Timer("miner.addblock.ns")
	tm.Record(50 * time.Microsecond)
	tm.Record(2 * time.Millisecond)
	tm.Record(2 * time.Millisecond)

	lines := promLines(t, r.Snapshot())
	checkFamily := func(family string, wantCount string) {
		t.Helper()
		var last int64 = -1
		var infVal, countVal string
		for _, line := range lines {
			if strings.HasPrefix(line, "#") {
				continue
			}
			series, v := parseSample(t, line)
			switch {
			case strings.HasPrefix(series, family+"_bucket{"):
				var n int64
				for _, c := range v {
					n = n*10 + int64(c-'0')
				}
				if n < last {
					t.Errorf("%s buckets not monotone: %d after %d (%s)", family, n, last, line)
				}
				last = n
				if strings.Contains(series, `le="+Inf"`) {
					infVal = v
				}
			case series == family+"_count":
				countVal = v
			}
		}
		if last < 0 {
			t.Fatalf("no bucket series for %s", family)
		}
		if infVal != wantCount || countVal != wantCount {
			t.Errorf("%s +Inf=%q count=%q, want %q", family, infVal, countVal, wantCount)
		}
	}
	checkFamily("demon_miner_candidates", "6")
	// The timer drops its ".ns" suffix and exposes seconds.
	checkFamily("demon_miner_addblock_seconds", "3")

	for _, line := range lines {
		if strings.Contains(line, "addblock_seconds_sum") {
			_, v := parseSample(t, line)
			if !strings.HasPrefix(v, "0.00405") {
				t.Errorf("timer sum not scaled to seconds: %s", line)
			}
		}
		if strings.Contains(line, "demon_miner_addblock_ns") {
			t.Errorf("raw nanosecond family leaked: %s", line)
		}
	}
}

// TestPromSortedDeterministic renders the same snapshot twice and also checks
// family blocks arrive in sorted order.
func TestPromSortedDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("m.mid|ns=b").Set(1)
	r.Gauge("m.mid|ns=a").Set(2)

	var one, two strings.Builder
	if err := r.Snapshot().WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Errorf("equal snapshots rendered differently:\n%s\n---\n%s", one.String(), two.String())
	}

	var families []string
	for _, line := range strings.Split(one.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Errorf("families out of order: %v", families)
		}
	}
	// Labeled series within a family sort by label block.
	out := one.String()
	if strings.Index(out, `ns="a"`) > strings.Index(out, `ns="b"`) {
		t.Errorf("label sets out of order:\n%s", out)
	}
}
