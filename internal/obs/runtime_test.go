package obs

// The runtime collector's gauges must track the process: they move under
// induced load, and surface through both snapshot serializations the debug
// mux serves — JSON and the Prometheus exposition.

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

var runtimeGaugeNames = []string{
	"runtime.goroutines",
	"runtime.heap.alloc.bytes",
	"runtime.heap.sys.bytes",
	"runtime.rss.bytes",
	"runtime.gc.count",
	"runtime.gc.pause.total.ns",
	"runtime.gc.pause.last.ns",
}

func TestRuntimeCollectorGaugesMoveUnderLoad(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	RegisterRuntimeCollector(r)
	RegisterRuntimeCollector(r) // idempotent: must not double-install

	runtime.GC() // at least one cycle so pause gauges are populated
	before := r.Snapshot()

	// Induce load: parked goroutines, live heap, forced GC cycles.
	release := make(chan struct{})
	done := make(chan struct{})
	const parked = 32
	for i := 0; i < parked; i++ {
		go func() {
			<-release
			done <- struct{}{}
		}()
	}
	hold := make([][]byte, 64)
	for i := range hold {
		hold[i] = make([]byte, 1<<20)
	}
	runtime.GC()
	runtime.GC()

	after := r.Snapshot()
	runtime.KeepAlive(hold)
	close(release)
	for i := 0; i < parked; i++ {
		<-done
	}

	for _, name := range runtimeGaugeNames {
		if _, ok := after.Gauges[name]; !ok {
			t.Errorf("gauge %s absent from snapshot", name)
		}
	}
	if g := after.Gauges["runtime.goroutines"]; g < before.Gauges["runtime.goroutines"]+parked {
		t.Errorf("runtime.goroutines = %d, want >= %d + %d parked",
			g, before.Gauges["runtime.goroutines"], parked)
	}
	// 64 MiB held across the snapshot must register against the baseline.
	if g := after.Gauges["runtime.heap.alloc.bytes"]; g < before.Gauges["runtime.heap.alloc.bytes"]+32<<20 {
		t.Errorf("runtime.heap.alloc.bytes = %d, did not grow with 64MiB live", g)
	}
	if after.Gauges["runtime.gc.count"] <= before.Gauges["runtime.gc.count"] {
		t.Errorf("runtime.gc.count did not advance across forced GC cycles")
	}
	if after.Gauges["runtime.gc.pause.total.ns"] <= 0 || after.Gauges["runtime.gc.pause.last.ns"] <= 0 {
		t.Errorf("gc pause gauges not populated: total=%d last=%d",
			after.Gauges["runtime.gc.pause.total.ns"], after.Gauges["runtime.gc.pause.last.ns"])
	}
	if rss := ReadRSSBytes(); rss > 0 && after.Gauges["runtime.rss.bytes"] <= 0 {
		t.Errorf("runtime.rss.bytes = %d on a platform where statm reports %d",
			after.Gauges["runtime.rss.bytes"], rss)
	}
}

func TestRuntimeGaugesInBothExpositions(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	RegisterRuntimeCollector(r)
	runtime.GC()
	snap := r.Snapshot()

	// JSON: the gauges must survive a marshal/unmarshal round trip.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	for _, name := range runtimeGaugeNames {
		if _, ok := back.Gauges[name]; !ok {
			t.Errorf("gauge %s lost in JSON round trip", name)
		}
	}

	// Prometheus: each gauge renders as a demon_runtime_* family.
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, fam := range []string{
		"demon_runtime_goroutines",
		"demon_runtime_heap_alloc_bytes",
		"demon_runtime_heap_sys_bytes",
		"demon_runtime_rss_bytes",
		"demon_runtime_gc_count",
		"demon_runtime_gc_pause_total_ns",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" gauge") || !strings.Contains(text, "\n"+fam+" ") {
			t.Errorf("exposition lacks gauge family %s:\n%s", fam, text)
		}
	}
}

func TestReadRSSBytes(t *testing.T) {
	rss := ReadRSSBytes()
	if rss < 0 {
		t.Fatalf("ReadRSSBytes = %d, want >= 0", rss)
	}
	// On Linux (where CI runs) statm exists and a Go test binary is at
	// least a megabyte resident.
	if rss > 0 && rss < 1<<20 {
		t.Errorf("ReadRSSBytes = %d, implausibly small for a live process", rss)
	}
}
