// Package pointgen implements the synthetic cluster data generator of
// Agrawal et al. (SIGMOD 1998) as used by the DEMON paper's clustering
// experiments: K Gaussian clusters distributed over all d dimensions, with a
// configurable fraction of uniformly distributed noise points to perturb the
// cluster centers. Datasets are named N M.Kc.dd (N million points, K
// clusters, d dimensions).
package pointgen

import (
	"fmt"
	"math/rand"
	"regexp"
	"strconv"

	"github.com/demon-mining/demon/internal/birch"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/cf"
)

// Config parameterizes a generator.
type Config struct {
	// NumPoints is the nominal dataset size N.
	NumPoints int
	// K is the number of clusters.
	K int
	// Dim is the dimensionality d.
	Dim int
	// Sigma is the per-dimension standard deviation of each cluster.
	// Defaults to 1.
	Sigma float64
	// Extent is the side of the [0, Extent]^d hypercube cluster centers are
	// drawn from. Defaults to 100.
	Extent float64
	// Noise is the fraction of uniformly distributed noise points (the
	// paper's Figure 8 uses 2%).
	Noise float64
	// Seed makes the generator deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Sigma == 0 {
		c.Sigma = 1
	}
	if c.Extent == 0 {
		c.Extent = 100
	}
	return c
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("pointgen: K = %d < 1", c.K)
	}
	if c.Dim < 1 {
		return fmt.Errorf("pointgen: dim = %d < 1", c.Dim)
	}
	if c.Noise < 0 || c.Noise >= 1 {
		return fmt.Errorf("pointgen: noise fraction %v outside [0, 1)", c.Noise)
	}
	return nil
}

// Spec renders the configuration in the paper's N M.Kc.dd notation.
func (c Config) Spec() string {
	return fmt.Sprintf("%gM.%dc.%dd", float64(c.NumPoints)/1e6, c.K, c.Dim)
}

var specRE = regexp.MustCompile(`^([0-9.]+)M\.([0-9]+)c\.([0-9]+)d$`)

// ParseSpec parses the N M.Kc.dd notation into a Config.
func ParseSpec(s string) (Config, error) {
	m := specRE.FindStringSubmatch(s)
	if m == nil {
		return Config{}, fmt.Errorf("pointgen: cannot parse dataset spec %q", s)
	}
	nm, err1 := strconv.ParseFloat(m[1], 64)
	k, err2 := strconv.Atoi(m[2])
	d, err3 := strconv.Atoi(m[3])
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			return Config{}, fmt.Errorf("pointgen: cannot parse dataset spec %q: %w", s, err)
		}
	}
	return Config{NumPoints: int(nm * 1e6), K: k, Dim: d}, nil
}

// Generator produces point blocks; consecutive blocks continue the stream
// around the same cluster centers.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	centers []cf.Point
}

// New builds a generator, drawing the K cluster centers once.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.centers = make([]cf.Point, cfg.K)
	for i := range g.centers {
		c := make(cf.Point, cfg.Dim)
		for d := range c {
			c[d] = g.rng.Float64() * cfg.Extent
		}
		g.centers[i] = c
	}
	return g, nil
}

// Centers returns the true cluster centers (for evaluation).
func (g *Generator) Centers() []cf.Point {
	out := make([]cf.Point, len(g.centers))
	for i, c := range g.centers {
		cp := make(cf.Point, len(c))
		copy(cp, c)
		out[i] = cp
	}
	return out
}

// Block generates the next n points as the block with the given identifier.
func (g *Generator) Block(id blockseq.ID, n int) *birch.PointBlock {
	pts := make([]cf.Point, n)
	for i := range pts {
		if g.rng.Float64() < g.cfg.Noise {
			p := make(cf.Point, g.cfg.Dim)
			for d := range p {
				p[d] = g.rng.Float64() * g.cfg.Extent
			}
			pts[i] = p
			continue
		}
		c := g.centers[g.rng.Intn(len(g.centers))]
		p := make(cf.Point, g.cfg.Dim)
		for d := range p {
			p[d] = c[d] + g.rng.NormFloat64()*g.cfg.Sigma
		}
		pts[i] = p
	}
	return &birch.PointBlock{ID: id, Points: pts}
}
