package pointgen

import (
	"math"
	"testing"

	"github.com/demon-mining/demon/internal/cf"
)

func TestSpecRoundTrip(t *testing.T) {
	cfg, err := ParseSpec("1M.50c.5d")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumPoints != 1_000_000 || cfg.K != 50 || cfg.Dim != 5 {
		t.Fatalf("ParseSpec = %+v", cfg)
	}
	if got := cfg.Spec(); got != "1M.50c.5d" {
		t.Fatalf("Spec = %q", got)
	}
	if _, err := ParseSpec("nope"); err == nil {
		t.Fatal("ParseSpec accepted garbage")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{NumPoints: 1000, K: 3, Dim: 2, Seed: 5}
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := g1.Block(1, 100), g2.Block(1, 100)
	for i := range b1.Points {
		for d := range b1.Points[i] {
			if b1.Points[i][d] != b2.Points[i][d] {
				t.Fatalf("point %d differs between identical generators", i)
			}
		}
	}
}

func TestPointsClusterAroundCenters(t *testing.T) {
	g, err := New(Config{NumPoints: 1000, K: 4, Dim: 3, Seed: 6, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	centers := g.Centers()
	if len(centers) != 4 {
		t.Fatalf("Centers = %d", len(centers))
	}
	b := g.Block(1, 2000)
	near := 0
	for _, p := range b.Points {
		best := math.Inf(1)
		for _, c := range centers {
			if d := cf.Distance(p, c); d < best {
				best = d
			}
		}
		// 5 sigma in 3 dims covers essentially all cluster points.
		if best < 5*math.Sqrt(3) {
			near++
		}
	}
	if frac := float64(near) / float64(len(b.Points)); frac < 0.99 {
		t.Fatalf("only %v of noise-free points near centers", frac)
	}
}

func TestNoiseFraction(t *testing.T) {
	g, err := New(Config{NumPoints: 1000, K: 2, Dim: 2, Seed: 7, Noise: 0.5, Sigma: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	centers := g.Centers()
	b := g.Block(1, 4000)
	far := 0
	for _, p := range b.Points {
		best := math.Inf(1)
		for _, c := range centers {
			if d := cf.Distance(p, c); d < best {
				best = d
			}
		}
		if best > 1 {
			far++
		}
	}
	frac := float64(far) / float64(len(b.Points))
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("noise fraction %v, configured 0.5", frac)
	}
}

func TestCentersReturnsCopy(t *testing.T) {
	g, err := New(Config{NumPoints: 10, K: 1, Dim: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Centers()
	c[0][0] = 12345
	if g.Centers()[0][0] == 12345 {
		t.Fatal("Centers aliases internal state")
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{K: 0, Dim: 2},
		{K: 2, Dim: 0},
		{K: 2, Dim: 2, Noise: 1.0},
		{K: 2, Dim: 2, Noise: -0.1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
