package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/itemset"
)

// fakeServer implements just enough of demon-serve's ingest contract to
// script failure sequences: it tracks a sequence high-water mark, dedupes,
// rejects gaps, and lets tests inject per-request behaviors.
type fakeServer struct {
	mu      sync.Mutex
	seq     uint64
	durable uint64
	blocks  []blockio.Block
	// script, when non-empty, overrides the next requests' handling; each
	// entry handles one POST /blocks.
	script []func(w http.ResponseWriter, r *http.Request) bool // true = handled
	posts  int
}

func (s *fakeServer) reply(w http.ResponseWriter, code int, accepted, duplicates int) {
	s.mu.Lock()
	next, durable := s.seq+1, s.durable
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"accepted": accepted, "duplicates": duplicates,
		"next_seq": next, "durable_seq": durable,
	})
}

func (s *fakeServer) handler(t *testing.T) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/namespaces/{name}/blocks", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.posts++
		var hook func(http.ResponseWriter, *http.Request) bool
		if len(s.script) > 0 {
			hook = s.script[0]
			s.script = s.script[1:]
		}
		s.mu.Unlock()
		if hook != nil && hook(w, r) {
			return
		}
		dec := blockio.NewLineDecoder(r.Body, 1<<20)
		accepted, duplicates := 0, 0
		for {
			b, err := dec.Next()
			if err != nil {
				break
			}
			s.mu.Lock()
			switch {
			case b.Seq <= s.seq:
				duplicates++
			case b.Seq == s.seq+1:
				s.seq = b.Seq
				s.blocks = append(s.blocks, b)
				accepted++
			default:
				s.mu.Unlock()
				s.reply(w, http.StatusConflict, accepted, duplicates)
				return
			}
			s.mu.Unlock()
		}
		if accepted == 0 && duplicates > 0 {
			s.reply(w, http.StatusOK, accepted, duplicates)
			return
		}
		s.reply(w, http.StatusAccepted, accepted, duplicates)
	})
	mux.HandleFunc("GET /v1/namespaces/{name}", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		next, durable := s.seq+1, s.durable
		s.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"next_seq": next, "durable_seq": durable, "healthy": true})
	})
	mux.HandleFunc("POST /v1/namespaces/{name}/flush", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.durable = s.seq
		next, durable := s.seq+1, s.durable
		s.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"next_seq": next, "durable_seq": durable, "healthy": true})
	})
	return mux
}

func txBlock(items ...itemset.Item) blockio.Block {
	return blockio.TxBlock([][]itemset.Item{items})
}

func newTestFeeder(t *testing.T, url string, mutate func(*Config)) *Feeder {
	t.Helper()
	cfg := Config{
		BaseURL:     url,
		Namespace:   "test",
		BatchSize:   4,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
		Rand:        func() float64 { return 1 }, // deterministic max jitter
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("new feeder: %v", err)
	}
	return f
}

func TestFeedHappyPath(t *testing.T) {
	fs := &fakeServer{}
	srv := httptest.NewServer(fs.handler(t))
	defer srv.Close()
	f := newTestFeeder(t, srv.URL, nil)

	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := f.Send(ctx, txBlock(itemset.Item(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := f.Checkpoint(ctx); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if fs.seq != 10 {
		t.Fatalf("server saw %d blocks, want 10", fs.seq)
	}
	st := f.Stats()
	if st.Sent != 10 || st.Duplicates != 0 {
		t.Fatalf("stats = %+v, want 10 sent", st)
	}
	if st.Buffered != 0 {
		t.Fatalf("replay buffer holds %d blocks after checkpoint, want 0", st.Buffered)
	}
}

func TestFeedRetriesTransportError(t *testing.T) {
	fs := &fakeServer{}
	// First two POSTs die mid-flight (ambiguous), then everything works.
	kill := func(w http.ResponseWriter, r *http.Request) bool {
		if hj, ok := w.(http.Hijacker); ok {
			conn, _, _ := hj.Hijack()
			conn.Close()
		}
		return true
	}
	fs.script = []func(http.ResponseWriter, *http.Request) bool{kill, kill}
	srv := httptest.NewServer(fs.handler(t))
	defer srv.Close()
	f := newTestFeeder(t, srv.URL, nil)

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := f.Send(ctx, txBlock(itemset.Item(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if fs.seq != 4 {
		t.Fatalf("server saw %d blocks, want 4", fs.seq)
	}
	st := f.Stats()
	if st.Retries < 2 || st.Resyncs < 2 {
		t.Fatalf("stats = %+v, want >= 2 retries and resyncs", st)
	}
}

func TestFeedResendsAfterDuplicateAck(t *testing.T) {
	fs := &fakeServer{}
	// The server ingests the batch but the response is torn: the client
	// must resync, re-send, and get duplicate acks — no double ingestion.
	fs.script = []func(http.ResponseWriter, *http.Request) bool{
		func(w http.ResponseWriter, r *http.Request) bool {
			dec := blockio.NewLineDecoder(r.Body, 1<<20)
			for {
				b, err := dec.Next()
				if err != nil {
					break
				}
				fs.mu.Lock()
				if b.Seq == fs.seq+1 {
					fs.seq = b.Seq
					fs.blocks = append(fs.blocks, b)
				}
				fs.mu.Unlock()
			}
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, _ := hj.Hijack()
				conn.Close()
			}
			return true
		},
	}
	srv := httptest.NewServer(fs.handler(t))
	defer srv.Close()
	f := newTestFeeder(t, srv.URL, nil)

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := f.Send(ctx, txBlock(itemset.Item(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(fs.blocks) != 4 {
		t.Fatalf("server ingested %d blocks, want exactly 4 (no double-count)", len(fs.blocks))
	}
}

func TestFeedHalvesBatchOn413(t *testing.T) {
	fs := &fakeServer{}
	too := func(w http.ResponseWriter, r *http.Request) bool {
		fs.reply(w, http.StatusRequestEntityTooLarge, 0, 0)
		return true
	}
	fs.script = []func(http.ResponseWriter, *http.Request) bool{too, too}
	srv := httptest.NewServer(fs.handler(t))
	defer srv.Close()
	f := newTestFeeder(t, srv.URL, nil)

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := f.Send(ctx, txBlock(itemset.Item(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if f.batch != 1 {
		t.Fatalf("batch = %d after two 413s from 4, want 1", f.batch)
	}
	if fs.seq != 4 {
		t.Fatalf("server saw %d blocks, want 4", fs.seq)
	}
}

func TestFeedGivesUpOnPersistent413(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		fmt.Fprint(w, `{"error":"line too long"}`)
	}))
	defer srv.Close()
	f := newTestFeeder(t, srv.URL, func(c *Config) { c.BatchSize = 1 })

	ctx := context.Background()
	// At batch size 1 the Send itself flushes, so the error may surface on
	// either call.
	err := f.Send(ctx, txBlock(1))
	if err == nil {
		err = f.Flush(ctx)
	}
	if !errors.Is(err, ErrBlockTooLarge) {
		t.Fatalf("feed = %v, want ErrBlockTooLarge", err)
	}
}

func TestFeedHonoursRetryAfter(t *testing.T) {
	fs := &fakeServer{}
	fs.script = []func(http.ResponseWriter, *http.Request) bool{
		func(w http.ResponseWriter, r *http.Request) bool {
			w.Header().Set("Retry-After", "3")
			fs.reply(w, http.StatusTooManyRequests, 0, 0)
			return true
		},
	}
	srv := httptest.NewServer(fs.handler(t))
	defer srv.Close()
	var slept []time.Duration
	f := newTestFeeder(t, srv.URL, func(c *Config) {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		}
	})

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := f.Send(ctx, txBlock(itemset.Item(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(slept) == 0 || slept[0] < 3*time.Second {
		t.Fatalf("slept %v, want first delay >= the 3s Retry-After", slept)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	fs := &fakeServer{}
	kill := func(w http.ResponseWriter, r *http.Request) bool {
		if hj, ok := w.(http.Hijacker); ok {
			conn, _, _ := hj.Hijack()
			conn.Close()
		}
		return true
	}
	fs.script = []func(http.ResponseWriter, *http.Request) bool{kill, kill, kill, kill, kill, kill, kill, kill}
	srv := httptest.NewServer(fs.handler(t))
	defer srv.Close()
	f := newTestFeeder(t, srv.URL, func(c *Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = 50 * time.Millisecond
		c.MaxAttempts = 100
	})

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := f.Send(ctx, txBlock(itemset.Item(i))); err != nil && !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	err := f.Flush(ctx)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("flush during failure storm = %v, want ErrBreakerOpen", err)
	}
	if f.Stats().BreakerOpens != 1 {
		t.Fatalf("breaker opened %d times, want 1", f.Stats().BreakerOpens)
	}

	// After the cooldown the half-open probe goes through (script is
	// drained by then) and the stream completes.
	time.Sleep(60 * time.Millisecond)
	fs.mu.Lock()
	fs.script = nil
	fs.mu.Unlock()
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("flush after cooldown: %v", err)
	}
	if fs.seq != 4 {
		t.Fatalf("server saw %d blocks, want 4", fs.seq)
	}
}

func TestSyncSkipsDurablePrefix(t *testing.T) {
	fs := &fakeServer{seq: 6, durable: 4}
	srv := httptest.NewServer(fs.handler(t))
	defer srv.Close()
	f := newTestFeeder(t, srv.URL, nil)

	ctx := context.Background()
	if err := f.Sync(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// Feed the same 10-block stream a prior run half-ingested: 1..4 are
	// durable (dropped), 5..6 applied (buffered only), 7..10 sent.
	for i := 0; i < 10; i++ {
		if err := f.Send(ctx, txBlock(itemset.Item(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if fs.seq != 10 {
		t.Fatalf("server high-water = %d, want 10", fs.seq)
	}
	if len(fs.blocks) != 4 {
		t.Fatalf("server ingested %d new blocks, want 4 (seqs 7..10)", len(fs.blocks))
	}
	if st := f.Stats(); st.Sent != 4 {
		t.Fatalf("stats = %+v, want 4 sent", st)
	}
}

func TestRerunIsIdempotent(t *testing.T) {
	fs := &fakeServer{}
	srv := httptest.NewServer(fs.handler(t))
	defer srv.Close()
	ctx := context.Background()

	feed := func() {
		f := newTestFeeder(t, srv.URL, nil)
		for i := 0; i < 6; i++ {
			if err := f.Send(ctx, txBlock(itemset.Item(i))); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		if err := f.Flush(ctx); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	feed()
	feed() // the whole stream again, without Sync: all duplicate acks
	if len(fs.blocks) != 6 {
		t.Fatalf("server ingested %d blocks after double feed, want 6", len(fs.blocks))
	}
}

func TestSendRejectsMissingBufferEntry(t *testing.T) {
	f := newTestFeeder(t, "http://127.0.0.1:0", nil)
	f.nextSeq = 5
	f.sendFrom = 3 // 3 and 4 claimed unsent but never buffered
	err := f.flushLocked(context.Background())
	if err == nil || !strings.Contains(err.Error(), "replay buffer") {
		t.Fatalf("flush with holes = %v, want replay buffer error", err)
	}
}
