// Package client is the resilient streaming ingest client behind
// cmd/demon-feed: it assigns monotonic sequence numbers to outgoing blocks,
// batches them into NDJSON POSTs against demon-serve's ingest API, and
// survives the network faults internal/chaos injects — per-attempt
// deadlines, capped exponential backoff with jitter honouring the server's
// Retry-After, a per-namespace circuit breaker, and resume-from-the-server's
// position after ambiguous failures.
//
// Exactly-once delivery rests on the sequencing contract with the server:
// every block carries seq = 1, 2, 3, …; the server acknowledges duplicates
// as no-ops and rejects gaps, so the client may blindly re-send anything it
// is unsure about. Sent blocks stay in a replay buffer until the server
// reports them checkpoint-covered (durable_seq) — the only mark a crash
// cannot roll back — so even a server restart mid-stream loses nothing: the
// client resyncs to the restored position and re-sends from there.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/demon-mining/demon/internal/blockio"
)

// ErrBreakerOpen reports that the namespace's circuit breaker is open: the
// last Config.BreakerThreshold attempts all failed, and the feeder refuses
// further sends until the cooldown elapses. Callers back off and retry.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// ErrBlockTooLarge reports a single block the server refuses even alone
// (HTTP 413 at batch size 1) — re-sending cannot help.
var ErrBlockTooLarge = errors.New("client: block exceeds server line cap")

// errBufferHole reports a sequence the feeder should hold but does not — a
// state bug, not a network fault, so it is never retried.
var errBufferHole = errors.New("client: seq missing from replay buffer")

// Config configures a Feeder. Zero values select the documented defaults.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Namespace is the target namespace name.
	Namespace string
	// HTTPClient optionally overrides http.DefaultClient.
	HTTPClient *http.Client
	// RequestTimeout bounds one POST attempt (default 1 minute).
	RequestTimeout time.Duration
	// MaxAttempts bounds how often one batch is tried before the feeder
	// gives up (default 8).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the exponential retry backoff
	// (defaults 100ms and 5s); the server's Retry-After raises a step's
	// delay when it asks for more.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BatchSize is how many blocks ride in one POST (default 16). A 413
	// halves it for the current flush, down to single blocks.
	BatchSize int
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive transport-level failures (default 5); BreakerCooldown is
	// how long it stays open before one probe is allowed through (default
	// 10s). A non-positive threshold disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Rand injects the jitter source; rand.Float64 when nil. Tests pin it
	// for determinism.
	Rand func() float64
	// Sleep injects the backoff sleeper; a context-aware time.Sleep when
	// nil. Tests pin it to observe or skip delays.
	Sleep func(context.Context, time.Duration) error
}

// Stats counts what the feeder has been through.
type Stats struct {
	// Sent blocks were accepted by the server (first time).
	Sent int64
	// Duplicates were acknowledged as already-accepted no-ops.
	Duplicates int64
	// Retries counts re-attempted batch POSTs (backpressure included).
	Retries int64
	// Resyncs counts status round-trips after ambiguous failures.
	Resyncs int64
	// BreakerOpens counts transitions to the open state.
	BreakerOpens int64
	// Buffered is the current replay-buffer size (blocks not yet
	// checkpoint-covered).
	Buffered int
}

// Feeder streams sequenced blocks into one namespace. Safe for use from one
// goroutine; wrap externally to share.
type Feeder struct {
	cfg Config
	hc  *http.Client

	mu       sync.Mutex
	buf      map[uint64]blockio.Block
	nextSeq  uint64 // next sequence number to assign
	sendFrom uint64 // next sequence number the server wants
	durable  uint64 // highest checkpoint-covered sequence (trim point)
	batch    int

	fails     int
	openUntil time.Time

	stats Stats
}

// New builds a Feeder. It performs no I/O; call Sync to adopt the server's
// position, or just start Sending — duplicates are free.
func New(cfg Config) (*Feeder, error) {
	if cfg.BaseURL == "" || cfg.Namespace == "" {
		return nil, fmt.Errorf("client: config needs BaseURL and Namespace")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return &Feeder{
		cfg:      cfg,
		hc:       cfg.HTTPClient,
		buf:      make(map[uint64]blockio.Block),
		nextSeq:  1,
		sendFrom: 1,
		batch:    cfg.BatchSize,
	}, nil
}

// Stats returns a snapshot of the feeder's counters.
func (f *Feeder) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Buffered = len(f.buf)
	return st
}

// Seq returns the next sequence number Send will assign.
func (f *Feeder) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nextSeq
}

// Send assigns the next sequence number to b and buffers it, flushing a
// full batch to the server when one has accumulated. Blocks the server
// already holds durably are dropped; blocks it holds non-durably are
// buffered for potential replay but not re-sent.
func (f *Feeder) Send(ctx context.Context, b blockio.Block) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	seq := f.nextSeq
	f.nextSeq++
	if seq <= f.durable {
		return nil // checkpoint-covered: can never be needed again
	}
	b.Seq = seq
	f.buf[seq] = b
	if f.nextSeq > f.sendFrom && f.nextSeq-f.sendFrom >= uint64(f.batch) {
		return f.flushLocked(ctx)
	}
	return nil
}

// Flush sends every assigned-but-unsent block.
func (f *Feeder) Flush(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushLocked(ctx)
}

func (f *Feeder) flushLocked(ctx context.Context) error {
	for f.sendFrom < f.nextSeq {
		if err := f.sendBatch(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint asks the server to flush its queue and checkpoint the model,
// promoting everything sent so far to durable, then trims the replay
// buffer. Call it periodically on long streams to bound buffer growth, and
// once at the end so a later crash cannot roll the tail back.
func (f *Feeder) Checkpoint(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.flushLocked(ctx); err != nil {
		return err
	}
	st, err := f.postFlush(ctx)
	if err != nil {
		return err
	}
	f.adopt(st)
	return nil
}

// Sync adopts the server's current position: where to send from, and what
// is already durable. After an ambiguous failure or a server restart this
// is how the feeder finds out what actually survived.
func (f *Feeder) Sync(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncLocked(ctx)
}

func (f *Feeder) syncLocked(ctx context.Context) error {
	f.stats.Resyncs++
	st, err := f.getStatus(ctx)
	if err != nil {
		return err
	}
	f.adopt(st)
	return nil
}

// nsState is the slice of the server's status document the feeder needs.
type nsState struct {
	NextSeq    uint64 `json:"next_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	Healthy    bool   `json:"healthy"`
}

// adopt applies a server position. sendFrom may move backwards (a restart
// rolled uncheckpointed blocks out of the model) — the replay buffer still
// holds everything past the durable mark, so re-sending just works. It may
// also sit ahead of everything assigned so far (resuming a half-ingested
// stream): blocks below it are then buffered or dropped, never re-sent —
// sequence numbers are positions in the input stream, so assignment never
// skips forward.
func (f *Feeder) adopt(st nsState) {
	if st.DurableSeq > f.durable {
		f.durable = st.DurableSeq
		for seq := range f.buf {
			if seq <= f.durable {
				delete(f.buf, seq)
			}
		}
	}
	if st.NextSeq > 0 {
		f.sendFrom = st.NextSeq
		if low := f.durable + 1; f.sendFrom < low {
			f.sendFrom = low
		}
	}
}

// ingestReply is the slice of the server's ingest result the feeder needs.
type ingestReply struct {
	Accepted   int    `json:"accepted"`
	Duplicates int    `json:"duplicates"`
	NextSeq    uint64 `json:"next_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	Error      string `json:"error"`
}

// sendBatch tries one batch until it is accepted or attempts run out. It
// owns the retry/backoff/breaker policy; f.mu is held throughout (the
// feeder is a single-stream pipeline — there is nothing useful to admit
// while the head of the line cannot be delivered).
func (f *Feeder) sendBatch(ctx context.Context) error {
	var backoff time.Duration
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			f.stats.Retries++
			if attempt >= f.cfg.MaxAttempts {
				return fmt.Errorf("client: batch at seq %d failed after %d attempts", f.sendFrom, attempt)
			}
			if err := f.cfg.Sleep(ctx, backoff); err != nil {
				return err
			}
		}
		if err := f.breakerAllow(); err != nil {
			return err
		}

		reply, status, err := f.postBatch(ctx)
		if err != nil {
			if errors.Is(err, errBufferHole) || ctx.Err() != nil {
				return err // not a network fault; retrying cannot help
			}
			// Transport-level failure: ambiguous — the server may have
			// accepted any prefix. Count it against the breaker, then
			// resync to learn the true position before re-sending.
			f.breakerFail()
			backoff = f.nextBackoff(backoff, "")
			if serr := f.syncLocked(ctx); serr != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		}
		f.breakerOK()

		switch status {
		case http.StatusAccepted, http.StatusOK:
			f.stats.Sent += int64(reply.Accepted)
			f.stats.Duplicates += int64(reply.Duplicates)
			f.adopt(nsState{NextSeq: reply.NextSeq, DurableSeq: reply.DurableSeq})
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Backpressure: the server says how far it got and (via
			// Retry-After) when to come back. Not a failure — the breaker
			// stays closed, and partial progress resets the attempt budget.
			f.stats.Sent += int64(reply.Accepted)
			f.stats.Duplicates += int64(reply.Duplicates)
			f.adopt(nsState{NextSeq: reply.NextSeq, DurableSeq: reply.DurableSeq})
			if reply.Accepted > 0 {
				attempt = 0
			}
			backoff = f.nextBackoff(backoff, reply.retryAfter)
			continue
		case http.StatusRequestEntityTooLarge:
			if f.batch > 1 {
				f.batch = max(1, f.batch/2)
				continue // immediately, with the smaller batch
			}
			return fmt.Errorf("%w: seq %d: %s", ErrBlockTooLarge, f.sendFrom, reply.Error)
		case http.StatusConflict:
			// Sequence disagreement or a just-reopened namespace: adopt the
			// server's position and re-send from there.
			backoff = f.nextBackoff(backoff, "")
			if serr := f.syncLocked(ctx); serr != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		default:
			return fmt.Errorf("client: ingest of seq %d: HTTP %d: %s", f.sendFrom, status, reply.Error)
		}
	}
}

// replyWithHeader carries the Retry-After header alongside the body.
type replyWithHeader struct {
	ingestReply
	retryAfter string
}

// postBatch POSTs blocks [sendFrom, min(sendFrom+batch, nextSeq)) under a
// per-attempt deadline. The body is rebuilt from the replay buffer each
// attempt, because sendFrom moves as the server acknowledges prefixes.
func (f *Feeder) postBatch(ctx context.Context) (replyWithHeader, int, error) {
	end := f.sendFrom + uint64(f.batch)
	if end > f.nextSeq {
		end = f.nextSeq
	}
	var body bytes.Buffer
	enc := blockio.NewEncoder(&body)
	for seq := f.sendFrom; seq < end; seq++ {
		b, ok := f.buf[seq]
		if !ok {
			return replyWithHeader{}, 0, fmt.Errorf("%w: seq %d (trimmed past a non-durable block?)", errBufferHole, seq)
		}
		if err := enc.Encode(b); err != nil {
			return replyWithHeader{}, 0, err
		}
	}

	rctx, cancel := context.WithTimeout(ctx, f.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		f.cfg.BaseURL+"/v1/namespaces/"+f.cfg.Namespace+"/blocks", bytes.NewReader(body.Bytes()))
	if err != nil {
		return replyWithHeader{}, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := f.hc.Do(req)
	if err != nil {
		return replyWithHeader{}, 0, err
	}
	defer resp.Body.Close()
	var out replyWithHeader
	out.retryAfter = resp.Header.Get("Retry-After")
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return replyWithHeader{}, 0, err
	}
	// A non-JSON error body (proxy, panic page) is fine — classification
	// runs on the status code; the reply fields just stay zero.
	_ = json.Unmarshal(data, &out.ingestReply)
	return out, resp.StatusCode, nil
}

// getStatus fetches the namespace status document.
func (f *Feeder) getStatus(ctx context.Context) (nsState, error) {
	rctx, cancel := context.WithTimeout(ctx, f.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		f.cfg.BaseURL+"/v1/namespaces/"+f.cfg.Namespace, nil)
	if err != nil {
		return nsState{}, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nsState{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nsState{}, fmt.Errorf("client: status of %s: HTTP %d", f.cfg.Namespace, resp.StatusCode)
	}
	var st nsState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nsState{}, err
	}
	return st, nil
}

// postFlush asks the server to drain the namespace queue and checkpoint.
func (f *Feeder) postFlush(ctx context.Context) (nsState, error) {
	rctx, cancel := context.WithTimeout(ctx, f.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		f.cfg.BaseURL+"/v1/namespaces/"+f.cfg.Namespace+"/flush?checkpoint=1", nil)
	if err != nil {
		return nsState{}, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nsState{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nsState{}, fmt.Errorf("client: flush of %s: HTTP %d: %s", f.cfg.Namespace, resp.StatusCode, data)
	}
	var st nsState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nsState{}, err
	}
	return st, nil
}

// nextBackoff doubles the delay up to the cap, applies full jitter in
// [delay/2, delay], and honours a server Retry-After asking for more.
func (f *Feeder) nextBackoff(prev time.Duration, retryAfter string) time.Duration {
	next := prev * 2
	if next <= 0 {
		next = f.cfg.BackoffBase
	}
	if next > f.cfg.BackoffCap {
		next = f.cfg.BackoffCap
	}
	jittered := next/2 + time.Duration(f.cfg.Rand()*float64(next/2))
	if secs, err := strconv.Atoi(retryAfter); err == nil {
		if server := time.Duration(secs) * time.Second; server > jittered {
			jittered = server
		}
	}
	return jittered
}

// ---- circuit breaker ----

func (f *Feeder) breakerAllow() error {
	if f.cfg.BreakerThreshold <= 0 {
		return nil
	}
	if f.fails >= f.cfg.BreakerThreshold && time.Now().Before(f.openUntil) {
		return fmt.Errorf("%w: namespace %s until %s", ErrBreakerOpen, f.cfg.Namespace,
			f.openUntil.Format(time.RFC3339))
	}
	// Past the cooldown the breaker is half-open: this attempt is the
	// probe; breakerFail re-opens, breakerOK closes.
	return nil
}

func (f *Feeder) breakerFail() {
	f.fails++
	if f.cfg.BreakerThreshold > 0 && f.fails == f.cfg.BreakerThreshold {
		f.stats.BreakerOpens++
	}
	if f.cfg.BreakerThreshold > 0 && f.fails >= f.cfg.BreakerThreshold {
		f.openUntil = time.Now().Add(f.cfg.BreakerCooldown)
	}
}

func (f *Feeder) breakerOK() { f.fails = 0 }
