package quest

import (
	"math"
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/itemset"
)

func testConfig() Config {
	return Config{
		NumTx:         10000,
		AvgTxLen:      10,
		NumItems:      100,
		NumPatterns:   20,
		AvgPatternLen: 4,
		Seed:          1,
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cfg, err := ParseSpec("2M.20L.1I.4pats.4plen")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumTx != 2_000_000 || cfg.AvgTxLen != 20 || cfg.NumItems != 1000 ||
		cfg.NumPatterns != 4000 || cfg.AvgPatternLen != 4 {
		t.Fatalf("ParseSpec = %+v", cfg)
	}
	if got := cfg.Spec(); got != "2M.20L.1I.4pats.4plen" {
		t.Fatalf("Spec = %q", got)
	}
	if _, err := ParseSpec("garbage"); err == nil {
		t.Fatal("ParseSpec accepted garbage")
	}
	// Fractional sizes parse too (e.g. scaled-down runs).
	cfg, err = ParseSpec("0.2M.20L.1I.4pats.4plen")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumTx != 200_000 {
		t.Fatalf("fractional NumTx = %d", cfg.NumTx)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b1 := g1.Block(1, 200)
	b2 := g2.Block(1, 200)
	if b1.Len() != b2.Len() {
		t.Fatal("nondeterministic block size")
	}
	for i := range b1.Txs {
		if !b1.Txs[i].Items.Equal(b2.Txs[i].Items) {
			t.Fatalf("tx %d differs between identical generators", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	cfg := testConfig()
	g1, _ := New(cfg)
	cfg.Seed = 2
	g2, _ := New(cfg)
	b1, b2 := g1.Block(1, 100), g2.Block(1, 100)
	same := 0
	for i := range b1.Txs {
		if b1.Txs[i].Items.Equal(b2.Txs[i].Items) {
			same++
		}
	}
	if same == len(b1.Txs) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestAverageTransactionLength(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := g.Block(1, 3000)
	total := 0
	for _, tx := range b.Txs {
		if len(tx.Items) == 0 {
			t.Fatal("generated empty transaction")
		}
		total += len(tx.Items)
	}
	avg := float64(total) / float64(b.Len())
	// Packing whole patterns overshoots the Poisson target somewhat; accept
	// a generous band around the configured mean.
	if avg < 5 || avg > 18 {
		t.Fatalf("average transaction length %v, configured 10", avg)
	}
}

func TestItemsWithinUniverse(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := g.Block(1, 500)
	for _, tx := range b.Txs {
		for _, it := range tx.Items {
			if it < 0 || int(it) >= 100 {
				t.Fatalf("item %d outside universe [0, 100)", it)
			}
		}
	}
}

func TestTIDsContinueAcrossBlocks(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b1 := g.Block(1, 50)
	b2 := g.Block(2, 70)
	if b1.FirstTID != 0 || b2.FirstTID != 50 {
		t.Fatalf("FirstTIDs = %d, %d", b1.FirstTID, b2.FirstTID)
	}
	if g.NextTID() != 120 {
		t.Fatalf("NextTID = %d", g.NextTID())
	}
	g.SetNextTID(1000)
	b3 := g.Block(3, 10)
	if b3.FirstTID != 1000 {
		t.Fatalf("after SetNextTID, FirstTID = %d", b3.FirstTID)
	}
}

// TestSkewProducesFrequentItemsets: the whole point of the generator is that
// pattern packing yields frequent itemsets of size > 1 at reasonable
// thresholds, unlike uniform random data.
func TestSkewProducesFrequentItemsets(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := g.Block(1, 3000)
	l, err := itemset.Apriori(itemset.SliceSource(b.Txs), nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := 0
	for k := range l.Frequent {
		if n := len(k.Itemset()); n > maxLen {
			maxLen = n
		}
	}
	if maxLen < 2 {
		t.Fatalf("no frequent itemsets beyond singletons at 2%% support (max len %d)", maxLen)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{AvgTxLen: 0, NumItems: 10, NumPatterns: 5, AvgPatternLen: 2},
		{AvgTxLen: 5, NumItems: 0, NumPatterns: 5, AvgPatternLen: 2},
		{AvgTxLen: 5, NumItems: 10, NumPatterns: 0, AvgPatternLen: 2},
		{AvgTxLen: 5, NumItems: 10, NumPatterns: 5, AvgPatternLen: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, mean := range []float64{0.5, 4, 20, 100} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(rng, mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.1 {
			t.Errorf("poisson(%v) sample mean %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) != 0")
	}
}

func TestClip(t *testing.T) {
	if clip(-1, 0, 1) != 0 || clip(2, 0, 1) != 1 || clip(0.5, 0, 1) != 0.5 {
		t.Fatal("clip misbehaves")
	}
}
