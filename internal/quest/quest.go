// Package quest implements the synthetic transaction data generator of
// Agrawal and Srikant (VLDB 1994), which the DEMON paper uses for all
// frequent-itemset experiments. Datasets are named with the paper's
// N M.tl L.|I| I.Np pats.p plen notation: N million transactions, average
// transaction length tl, |I| thousand items, Np thousand potentially large
// itemsets ("patterns") of average length p.
package quest

import (
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"strconv"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
)

// Config parameterizes a generator.
type Config struct {
	// NumTx is the nominal number of transactions N (used by the spec
	// notation; blocks of any size can be drawn regardless).
	NumTx int
	// AvgTxLen is the average transaction length tl.
	AvgTxLen int
	// NumItems is the item universe size |I|.
	NumItems int
	// NumPatterns is the number of potentially large itemsets Np.
	NumPatterns int
	// AvgPatternLen is the average pattern length p.
	AvgPatternLen int
	// Correlation is the fraction of items a pattern inherits from its
	// predecessor (exponentially distributed with this mean). Defaults to
	// the paper's 0.5 when zero.
	Correlation float64
	// CorruptionMean/CorruptionSD parameterize the per-pattern corruption
	// level (normal, clipped to [0,1]). Default 0.5 / 0.1.
	CorruptionMean float64
	CorruptionSD   float64
	// Seed makes the generator deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Correlation == 0 {
		c.Correlation = 0.5
	}
	if c.CorruptionMean == 0 {
		c.CorruptionMean = 0.5
	}
	if c.CorruptionSD == 0 {
		c.CorruptionSD = 0.1
	}
	return c
}

func (c Config) validate() error {
	if c.AvgTxLen < 1 {
		return fmt.Errorf("quest: average transaction length %d < 1", c.AvgTxLen)
	}
	if c.NumItems < 1 {
		return fmt.Errorf("quest: item universe %d < 1", c.NumItems)
	}
	if c.NumPatterns < 1 {
		return fmt.Errorf("quest: pattern table size %d < 1", c.NumPatterns)
	}
	if c.AvgPatternLen < 1 {
		return fmt.Errorf("quest: average pattern length %d < 1", c.AvgPatternLen)
	}
	return nil
}

// Spec renders the configuration in the paper's dataset notation, e.g.
// "2M.20L.1I.4pats.4plen".
func (c Config) Spec() string {
	return fmt.Sprintf("%gM.%dL.%gI.%gpats.%dplen",
		float64(c.NumTx)/1e6, c.AvgTxLen, float64(c.NumItems)/1e3,
		float64(c.NumPatterns)/1e3, c.AvgPatternLen)
}

var specRE = regexp.MustCompile(`^([0-9.]+)M\.([0-9]+)L\.([0-9.]+)I\.([0-9.]+)pats\.([0-9]+)plen$`)

// ParseSpec parses the paper's dataset notation into a Config (Seed zero).
func ParseSpec(s string) (Config, error) {
	m := specRE.FindStringSubmatch(s)
	if m == nil {
		return Config{}, fmt.Errorf("quest: cannot parse dataset spec %q", s)
	}
	nm, err1 := strconv.ParseFloat(m[1], 64)
	tl, err2 := strconv.Atoi(m[2])
	ni, err3 := strconv.ParseFloat(m[3], 64)
	np, err4 := strconv.ParseFloat(m[4], 64)
	pl, err5 := strconv.Atoi(m[5])
	for _, err := range []error{err1, err2, err3, err4, err5} {
		if err != nil {
			return Config{}, fmt.Errorf("quest: cannot parse dataset spec %q: %w", s, err)
		}
	}
	return Config{
		NumTx:         int(nm * 1e6),
		AvgTxLen:      tl,
		NumItems:      int(ni * 1e3),
		NumPatterns:   int(np * 1e3),
		AvgPatternLen: pl,
	}, nil
}

// pattern is one potentially large itemset with its selection weight and
// corruption level.
type pattern struct {
	items      itemset.Itemset
	weight     float64
	corruption float64
}

// Generator produces transactions one block at a time; consecutive blocks
// continue the same stream.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	patterns []pattern
	cum      []float64 // cumulative weights for pattern selection
	nextTID  int
}

// New builds a generator: the pattern table is drawn once, transactions are
// drawn on demand.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.buildPatterns()
	return g, nil
}

// buildPatterns draws the table of potentially large itemsets: sizes are
// Poisson with mean AvgPatternLen (min 1); items are partially inherited
// from the previous pattern (exp-distributed fraction with mean
// Correlation); weights are exponential, normalized; corruption levels are
// clipped normal.
func (g *Generator) buildPatterns() {
	cfg := g.cfg
	g.patterns = make([]pattern, cfg.NumPatterns)
	var prev itemset.Itemset
	totalW := 0.0
	for i := range g.patterns {
		size := poisson(g.rng, float64(cfg.AvgPatternLen))
		if size < 1 {
			size = 1
		}
		if size > cfg.NumItems {
			size = cfg.NumItems
		}
		picked := make(map[itemset.Item]bool, size)
		// Inherit a fraction of the previous pattern's items.
		if len(prev) > 0 {
			frac := expClipped(g.rng, cfg.Correlation)
			inherit := int(frac * float64(size))
			perm := g.rng.Perm(len(prev))
			for _, pi := range perm {
				if len(picked) >= inherit {
					break
				}
				picked[prev[pi]] = true
			}
		}
		for len(picked) < size {
			picked[itemset.Item(g.rng.Intn(cfg.NumItems))] = true
		}
		items := make([]itemset.Item, 0, size)
		for it := range picked {
			items = append(items, it)
		}
		is := itemset.NewItemset(items...)
		w := expDist(g.rng, 1.0)
		c := clip(g.rng.NormFloat64()*cfg.CorruptionSD+cfg.CorruptionMean, 0, 1)
		g.patterns[i] = pattern{items: is, weight: w, corruption: c}
		prev = is
		totalW += w
	}
	g.cum = make([]float64, len(g.patterns))
	acc := 0.0
	for i, p := range g.patterns {
		acc += p.weight / totalW
		g.cum[i] = acc
	}
	g.cum[len(g.cum)-1] = 1.0
}

// pickPattern selects a pattern by weight.
func (g *Generator) pickPattern() pattern {
	u := g.rng.Float64()
	lo, hi := 0, len(g.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.patterns[lo]
}

// transaction draws one transaction of Poisson-mean-AvgTxLen size by packing
// corrupted patterns, per AS94: a pattern that does not fit is kept anyway
// in half the cases, otherwise dropped.
func (g *Generator) transaction() []itemset.Item {
	size := poisson(g.rng, float64(g.cfg.AvgTxLen))
	if size < 1 {
		size = 1
	}
	picked := make(map[itemset.Item]bool, size)
	for len(picked) < size {
		p := g.pickPattern()
		// Corrupt: repeatedly drop a random item while a uniform draw stays
		// below the pattern's corruption level.
		kept := append(itemset.Itemset(nil), p.items...)
		for len(kept) > 0 && g.rng.Float64() < p.corruption {
			i := g.rng.Intn(len(kept))
			kept[i] = kept[len(kept)-1]
			kept = kept[:len(kept)-1]
		}
		if len(kept) == 0 {
			continue
		}
		if len(picked)+len(kept) > size && g.rng.Intn(2) == 0 {
			// Does not fit: drop in half the cases.
			if len(picked) > 0 {
				break
			}
			continue
		}
		for _, it := range kept {
			picked[it] = true
		}
	}
	out := make([]itemset.Item, 0, len(picked))
	for it := range picked {
		out = append(out, it)
	}
	return out
}

// Block generates the next n transactions as the block with the given
// identifier; TIDs continue the generator's stream.
func (g *Generator) Block(id blockseq.ID, n int) *itemset.TxBlock {
	rows := make([][]itemset.Item, n)
	for i := range rows {
		rows[i] = g.transaction()
	}
	b := itemset.NewTxBlock(id, g.nextTID, rows)
	g.nextTID += n
	return b
}

// SetNextTID overrides the TID the next block starts at; used when a second
// generator with different distribution parameters continues an existing
// stream (Figures 4–7).
func (g *Generator) SetNextTID(tid int) { g.nextTID = tid }

// NextTID returns the TID the next generated transaction will receive.
func (g *Generator) NextTID() int { return g.nextTID }

// poisson draws from a Poisson distribution (Knuth's method for small
// means, normal approximation for large).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		return int(math.Round(rng.NormFloat64()*math.Sqrt(mean) + mean))
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// expDist draws from an exponential distribution with the given mean.
func expDist(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// expClipped draws exponential with the given mean, clipped to [0, 1].
func expClipped(rng *rand.Rand, mean float64) float64 {
	return clip(expDist(rng, mean), 0, 1)
}

func clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
