package itemset

// HashTree is the candidate-counting structure of Agrawal et al. (AMS+96),
// referenced in footnote 7 of the DEMON paper as the alternative to the
// prefix tree. Interior nodes hash the next transaction item into a bucket;
// leaves hold candidate lists until they overflow and split. It is provided
// so the PT-Scan baseline can be cross-checked against an independent
// counting structure.
type HashTree struct {
	root    *htNode
	fanout  int
	leafCap int
	cands   []Itemset
	counts  []int
	visited map[*htNode]bool // reused across CountTx calls
}

type htNode struct {
	depth    int
	children []*htNode // nil for leaves
	leaf     []int     // candidate indices
}

// NewHashTree builds a hash tree over the candidates with the given fanout
// and leaf capacity. fanout and leafCap must be positive; typical values are
// fanout 8, leafCap 16. Duplicates are collapsed.
func NewHashTree(cands []Itemset, fanout, leafCap int) *HashTree {
	if fanout <= 0 || leafCap <= 0 {
		panic("itemset: HashTree fanout and leafCap must be positive")
	}
	t := &HashTree{
		root:    &htNode{},
		fanout:  fanout,
		leafCap: leafCap,
		visited: make(map[*htNode]bool),
	}
	seen := make(map[Key]bool, len(cands))
	for _, c := range cands {
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		idx := len(t.cands)
		t.cands = append(t.cands, c)
		t.counts = append(t.counts, 0)
		t.insert(t.root, idx)
	}
	return t
}

func (t *HashTree) hash(it Item) int { return int(uint32(it)) % t.fanout }

func (t *HashTree) insert(n *htNode, idx int) {
	c := t.cands[idx]
	// Descend while the candidate still has an item to hash at this depth. A
	// candidate shorter than the subtree it hashes into (split that deep by
	// longer candidates) is parked on the interior node itself, where counting
	// verifies it like any leaf entry.
	for n.children != nil && n.depth < len(c) {
		n = n.children[t.hash(c[n.depth])]
	}
	n.leaf = append(n.leaf, idx)
	if n.children != nil || len(n.leaf) <= t.leafCap {
		return
	}
	// Split the overflowing leaf: entries with an item to hash at this depth
	// move into children, shorter ones stay parked here.
	old := n.leaf
	n.leaf = nil
	n.children = make([]*htNode, t.fanout)
	for b := range n.children {
		n.children[b] = &htNode{depth: n.depth + 1}
	}
	for _, i := range old {
		if ci := t.cands[i]; len(ci) > n.depth {
			t.insert(n.children[t.hash(ci[n.depth])], i)
		} else {
			n.leaf = append(n.leaf, i)
		}
	}
}

// Size returns the number of distinct candidates.
func (t *HashTree) Size() int { return len(t.cands) }

// CountTx increments the count of every candidate contained in tx. A
// transaction can reach the same leaf along several hash paths, so leaves are
// deduplicated per call.
func (t *HashTree) CountTx(tx Transaction) {
	clear(t.visited)
	t.count(t.root, tx.Items, tx.Items)
}

// count descends hashing successive transaction items; candidates stored on a
// node — leaf entries and the short ones parked on interior nodes — are
// verified against the full transaction (the hash path only guarantees hash
// equality, not item equality) and each node's list is visited at most once
// per transaction.
func (t *HashTree) count(n *htNode, items, full Itemset) {
	if len(n.leaf) > 0 && !t.visited[n] {
		t.visited[n] = true
		for _, idx := range n.leaf {
			if t.cands[idx].SubsetOf(full) {
				t.counts[idx]++
			}
		}
	}
	if n.children == nil {
		return
	}
	// At depth d the candidate's d-th item was hashed; try every remaining
	// transaction item as that position.
	for i, it := range items {
		t.count(n.children[t.hash(it)], items[i+1:], full)
	}
}

// Counts returns the support count of every candidate, keyed by itemset key.
func (t *HashTree) Counts() map[Key]int {
	out := make(map[Key]int, len(t.cands))
	for i, c := range t.cands {
		out[c.Key()] = t.counts[i]
	}
	return out
}

// Reset zeroes all candidate counts, keeping the structure.
func (t *HashTree) Reset() {
	for i := range t.counts {
		t.counts[i] = 0
	}
}
