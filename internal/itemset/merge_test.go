package itemset

import "testing"

func TestMergeTxBlocks(t *testing.T) {
	b1 := NewTxBlock(1, 0, [][]Item{{1}, {2}})
	b2 := NewTxBlock(2, 2, [][]Item{{3}})
	b3 := NewTxBlock(3, 3, [][]Item{{4}, {5}})

	// Any input order; TID order decides.
	merged, err := MergeTxBlocks(10, b3, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ID != 10 || merged.FirstTID != 0 || merged.Len() != 5 {
		t.Fatalf("merged header: %+v", merged)
	}
	for i, tx := range merged.Txs {
		if tx.TID != i {
			t.Fatalf("tx %d has TID %d", i, tx.TID)
		}
	}
	if !merged.Txs[4].Items.Equal(Itemset{5}) {
		t.Fatalf("last tx = %v", merged.Txs[4].Items)
	}
}

func TestMergeTxBlocksSingle(t *testing.T) {
	b := NewTxBlock(1, 7, [][]Item{{1}})
	merged, err := MergeTxBlocks(2, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.FirstTID != 7 || merged.Len() != 1 {
		t.Fatalf("merged = %+v", merged)
	}
}

func TestMergeTxBlocksErrors(t *testing.T) {
	if _, err := MergeTxBlocks(1); err == nil {
		t.Error("accepted zero blocks")
	}
	b := NewTxBlock(1, 0, [][]Item{{1}})
	if _, err := MergeTxBlocks(2, b, b); err == nil {
		t.Error("accepted duplicate block")
	}
	overlapping := NewTxBlock(2, 0, [][]Item{{2}})
	if _, err := MergeTxBlocks(3, b, overlapping); err == nil {
		t.Error("accepted overlapping TID ranges")
	}
}

// TestMergePreservesLattice: mining the merged block equals mining the
// parts together — the property that makes time-hierarchy roll-ups sound.
func TestMergePreservesLattice(t *testing.T) {
	b1 := NewTxBlock(1, 0, [][]Item{{1, 2}, {1, 2}, {3}})
	b2 := NewTxBlock(2, 3, [][]Item{{1, 2}, {4}})
	merged, err := MergeTxBlocks(9, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	fromMerged, err := Apriori(SliceSource(merged.Txs), nil, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]Transaction{}, b1.Txs...), b2.Txs...)
	fromParts, err := Apriori(SliceSource(all), nil, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	latticesEqual(t, fromMerged, fromParts)
}
