package itemset

import (
	"fmt"
	"math"

	"github.com/demon-mining/demon/internal/diskio"
)

// Encode serializes the lattice: N, κ, pass count, then the frequent and
// border maps as (itemset, count) pairs in deterministic order. The format
// supports the paper's Section 3.2.3 design point that all but the current
// window model live on disk, and lets a miner checkpoint and resume.
func (l *Lattice) Encode() []byte {
	buf := diskio.AppendUvarint(nil, uint64(l.N))
	buf = diskio.AppendUvarint(buf, math.Float64bits(l.MinSupport))
	buf = diskio.AppendUvarint(buf, uint64(l.Passes))
	buf = appendCountMap(buf, l.Frequent)
	buf = appendCountMap(buf, l.Border)
	return buf
}

func appendCountMap(buf []byte, m map[Key]int) []byte {
	buf = diskio.AppendUvarint(buf, uint64(len(m)))
	sets := make([]Itemset, 0, len(m))
	for k := range m {
		sets = append(sets, k.Itemset())
	}
	SortItemsets(sets)
	ints := make([]int, 0, 8)
	for _, x := range sets {
		ints = ints[:0]
		for _, it := range x {
			ints = append(ints, int(it))
		}
		buf = diskio.AppendSortedInts(buf, ints)
		buf = diskio.AppendUvarint(buf, uint64(m[x.Key()]))
	}
	return buf
}

// DecodeLattice reverses Lattice.Encode, returning the lattice and any
// trailing bytes.
func DecodeLattice(data []byte) (*Lattice, []byte, error) {
	n, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("itemset: decoding lattice N: %w", err)
	}
	bits, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("itemset: decoding lattice κ: %w", err)
	}
	passes, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("itemset: decoding lattice passes: %w", err)
	}
	l := NewLattice(math.Float64frombits(bits))
	l.N = int(n)
	l.Passes = int(passes)
	if l.Frequent, data, err = readCountMap(data); err != nil {
		return nil, nil, fmt.Errorf("itemset: decoding frequent map: %w", err)
	}
	if l.Border, data, err = readCountMap(data); err != nil {
		return nil, nil, fmt.Errorf("itemset: decoding border map: %w", err)
	}
	return l, data, nil
}

func readCountMap(data []byte) (map[Key]int, []byte, error) {
	n, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data))+1 {
		return nil, nil, fmt.Errorf("%w: implausible map size %d", diskio.ErrCorrupt, n)
	}
	m := make(map[Key]int, n)
	for i := uint64(0); i < n; i++ {
		ints, rest, err := diskio.ReadSortedInts(data)
		if err != nil {
			return nil, nil, err
		}
		count, rest2, err := diskio.ReadUvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		data = rest2
		items := make(Itemset, len(ints))
		for j, x := range ints {
			items[j] = Item(x)
		}
		m[items.Key()] = int(count)
	}
	return m, data, nil
}
