package itemset

import (
	"math/rand"
	"testing"
)

func randomLattice(rng *rand.Rand) *Lattice {
	l := NewLattice(0.01 + rng.Float64()*0.4)
	l.N = rng.Intn(100000)
	l.Passes = rng.Intn(10)
	for i := 0; i < rng.Intn(40); i++ {
		size := 1 + rng.Intn(4)
		items := make([]Item, size)
		for j := range items {
			items[j] = Item(rng.Intn(500))
		}
		l.Frequent[NewItemset(items...).Key()] = rng.Intn(1000)
	}
	for i := 0; i < rng.Intn(40); i++ {
		size := 1 + rng.Intn(4)
		items := make([]Item, size)
		for j := range items {
			items[j] = Item(rng.Intn(500))
		}
		k := NewItemset(items...).Key()
		if _, dup := l.Frequent[k]; !dup {
			l.Border[k] = rng.Intn(1000)
		}
	}
	return l
}

func latticeDeepEqual(t *testing.T, got, want *Lattice) {
	t.Helper()
	if got.N != want.N || got.MinSupport != want.MinSupport || got.Passes != want.Passes {
		t.Fatalf("header mismatch: %+v vs %+v", got, want)
	}
	if len(got.Frequent) != len(want.Frequent) || len(got.Border) != len(want.Border) {
		t.Fatalf("map sizes: %d/%d vs %d/%d",
			len(got.Frequent), len(got.Border), len(want.Frequent), len(want.Border))
	}
	for k, c := range want.Frequent {
		if got.Frequent[k] != c {
			t.Fatalf("frequent %v: %d vs %d", k.Itemset(), got.Frequent[k], c)
		}
	}
	for k, c := range want.Border {
		if got.Border[k] != c {
			t.Fatalf("border %v: %d vs %d", k.Itemset(), got.Border[k], c)
		}
	}
}

func TestLatticeCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 30; trial++ {
		l := randomLattice(rng)
		dec, rest, err := DecodeLattice(l.Encode())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(rest) != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(rest))
		}
		latticeDeepEqual(t, dec, l)
	}
}

func TestLatticeCodecEmpty(t *testing.T) {
	l := NewLattice(0.5)
	dec, rest, err := DecodeLattice(l.Encode())
	if err != nil || len(rest) != 0 {
		t.Fatalf("err=%v rest=%d", err, len(rest))
	}
	latticeDeepEqual(t, dec, l)
}

func TestLatticeCodecDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	l := randomLattice(rng)
	a, b := l.Encode(), l.Encode()
	if string(a) != string(b) {
		t.Fatal("Encode is nondeterministic across calls")
	}
	// A clone (different map iteration order) must encode identically.
	if string(l.Clone().Encode()) != string(a) {
		t.Fatal("Encode depends on map construction order")
	}
}

func TestLatticeCodecCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := randomLattice(rng)
	enc := l.Encode()
	if _, _, err := DecodeLattice(nil); err == nil {
		t.Error("accepted empty input")
	}
	if _, _, err := DecodeLattice(enc[:len(enc)/2]); err == nil {
		t.Error("accepted truncated input")
	}
	// Implausible map size.
	bad := append([]byte{}, enc[:3]...)
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, _, err := DecodeLattice(bad); err == nil {
		t.Error("accepted implausible map size")
	}
}

func TestLatticeCodecTrailingBytesReturned(t *testing.T) {
	l := NewLattice(0.1)
	l.N = 3
	enc := append(l.Encode(), 0xAB, 0xCD)
	_, rest, err := DecodeLattice(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0] != 0xAB {
		t.Fatalf("rest = %v", rest)
	}
}
