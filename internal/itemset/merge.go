package itemset

import (
	"fmt"
	"sort"

	"github.com/demon-mining/demon/internal/blockseq"
)

// MergeTxBlocks coalesces several blocks into one, preserving transaction
// order by TID — the Section 2.1 mechanism for hierarchies on the time
// dimension: "we just merge all blocks that fall under the same parent"
// (e.g. 24 hourly blocks into one daily block). The merged block takes the
// given identifier; input blocks must have pairwise distinct identifiers
// and non-overlapping TID ranges.
func MergeTxBlocks(id blockseq.ID, blocks ...*TxBlock) (*TxBlock, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("itemset: merging zero blocks")
	}
	seen := make(map[blockseq.ID]bool, len(blocks))
	total := 0
	for _, b := range blocks {
		if seen[b.ID] {
			return nil, fmt.Errorf("itemset: duplicate block %d in merge", b.ID)
		}
		seen[b.ID] = true
		total += len(b.Txs)
	}
	ordered := make([]*TxBlock, len(blocks))
	copy(ordered, blocks)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].FirstTID < ordered[j].FirstTID })

	merged := &TxBlock{ID: id, Txs: make([]Transaction, 0, total)}
	if total > 0 {
		merged.FirstTID = ordered[0].FirstTID
	}
	prevEnd := -1
	for _, b := range ordered {
		if len(b.Txs) == 0 {
			continue
		}
		if b.FirstTID <= prevEnd {
			return nil, fmt.Errorf("itemset: blocks %v overlap in TID space", ids(blocks))
		}
		prevEnd = b.FirstTID + len(b.Txs) - 1
		merged.Txs = append(merged.Txs, b.Txs...)
	}
	return merged, nil
}

func ids(blocks []*TxBlock) []blockseq.ID {
	out := make([]blockseq.ID, len(blocks))
	for i, b := range blocks {
		out[i] = b.ID
	}
	return out
}
