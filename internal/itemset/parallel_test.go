package itemset

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestParallelCountMatchesSerial: sharded counting with additive merge equals
// the serial scan for every worker count, for both counting structures.
func TestParallelCountMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	txs := randomTxs(r, 400, 30, 5)
	for _, k := range []int{1, 2, 3} {
		cands := randomCands(r, 20, 30, k)
		want := ParallelPrefixCount(cands, txs, 1)
		builders := map[string]func() TxCounter{
			"prefix": func() TxCounter { return NewPrefixTree(cands) },
			"hash":   func() TxCounter { return NewHashTree(cands, 4, 3) },
		}
		for name, build := range builders {
			for _, w := range []int{0, 1, 2, 3, 7, runtime.GOMAXPROCS(0), 500} {
				got := ParallelCount(txs, w, build)
				if len(got) != len(want) {
					t.Fatalf("k=%d %s workers=%d: %d counts, want %d", k, name, w, len(got), len(want))
				}
				for key, c := range want {
					if got[key] != c {
						t.Fatalf("k=%d %s workers=%d: count[%v] = %d, want %d", k, name, w, key, got[key], c)
					}
				}
			}
		}
	}
}

func TestParallelCountEmpty(t *testing.T) {
	cands := []Itemset{NewItemset(1)}
	got := ParallelPrefixCount(cands, nil, 8)
	if got[cands[0].Key()] != 0 {
		t.Fatalf("empty scan count = %d", got[cands[0].Key()])
	}
}

func TestMergeCounts(t *testing.T) {
	a := NewItemset(1).Key()
	b := NewItemset(2).Key()
	dst := map[Key]int{a: 2}
	MergeCounts(dst, map[Key]int{a: 3, b: 1})
	if dst[a] != 5 || dst[b] != 1 {
		t.Fatalf("merged = %v", dst)
	}
}
