package itemset

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestRulesHandChecked(t *testing.T) {
	// 10 transactions: {1,2} in 6, {1} alone in 2, {2} alone in 2.
	txs := make([]Transaction, 0, 10)
	for i := 0; i < 6; i++ {
		txs = append(txs, Transaction{TID: i, Items: NewItemset(1, 2)})
	}
	for i := 6; i < 8; i++ {
		txs = append(txs, Transaction{TID: i, Items: NewItemset(1)})
	}
	for i := 8; i < 10; i++ {
		txs = append(txs, Transaction{TID: i, Items: NewItemset(2)})
	}
	l, err := Apriori(SliceSource(txs), nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(l, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// σ({1}) = σ({2}) = 0.8, σ({1,2}) = 0.6. Both directions have
	// confidence 0.75 and lift 0.75/0.8 = 0.9375.
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	for _, r := range rules {
		if math.Abs(r.Confidence-0.75) > 1e-12 {
			t.Errorf("confidence = %v, want 0.75", r.Confidence)
		}
		if math.Abs(r.Support-0.6) > 1e-12 {
			t.Errorf("support = %v, want 0.6", r.Support)
		}
		if math.Abs(r.Lift-0.9375) > 1e-12 {
			t.Errorf("lift = %v, want 0.9375", r.Lift)
		}
	}
	// At confidence 0.8 no rule survives.
	rules, err = Rules(l, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatalf("rules at 0.8 = %v", rules)
	}
}

func TestRulesThreeItemset(t *testing.T) {
	// All transactions contain {1,2,3}: every rule has confidence 1.
	txs := make([]Transaction, 5)
	for i := range txs {
		txs[i] = Transaction{TID: i, Items: NewItemset(1, 2, 3)}
	}
	l, err := Apriori(SliceSource(txs), nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(l, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// From {1,2}: 2 rules; from {1,3}: 2; from {2,3}: 2; from {1,2,3}:
	// 2^3-2 = 6. Total 12.
	if len(rules) != 12 {
		t.Fatalf("got %d rules, want 12", len(rules))
	}
	for _, r := range rules {
		if r.Confidence != 1 {
			t.Fatalf("rule %v confidence %v", r, r.Confidence)
		}
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Fatalf("degenerate rule %v", r)
		}
	}
}

// TestRulesConfidenceMatchesNaive cross-checks rule metrics against direct
// counting on random data.
func TestRulesConfidenceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	txs := randomTxs(rng, 150, 8, 4)
	l, err := Apriori(SliceSource(txs), nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(l, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	count := func(x Itemset) int {
		c := 0
		for _, tx := range txs {
			if tx.Contains(x) {
				c++
			}
		}
		return c
	}
	for _, r := range rules {
		union := r.Antecedent.Union(r.Consequent)
		wantSup := float64(count(union)) / float64(len(txs))
		wantConf := float64(count(union)) / float64(count(r.Antecedent))
		if math.Abs(r.Support-wantSup) > 1e-12 || math.Abs(r.Confidence-wantConf) > 1e-12 {
			t.Fatalf("rule %v metrics diverge: want sup %v conf %v", r, wantSup, wantConf)
		}
		if r.Confidence < 0.4 {
			t.Fatalf("rule %v below threshold", r)
		}
	}
}

func TestRulesSortedByConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	txs := randomTxs(rng, 200, 10, 4)
	l, err := Apriori(SliceSource(txs), nil, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Rules(l, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatalf("rules not sorted at %d", i)
		}
	}
}

func TestRulesValidation(t *testing.T) {
	l := NewLattice(0.1)
	if _, err := Rules(l, 0); err == nil {
		t.Error("accepted minConf 0")
	}
	if _, err := Rules(l, 1.5); err == nil {
		t.Error("accepted minConf > 1")
	}
	rules, err := Rules(l, 0.5)
	if err != nil || rules != nil {
		t.Errorf("empty lattice: %v, %v", rules, err)
	}
	// Inconsistent lattice (missing subset) must be detected.
	l.N = 10
	l.Frequent[NewItemset(1, 2).Key()] = 5
	if _, err := Rules(l, 0.5); err == nil {
		t.Error("accepted lattice with missing subsets")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: NewItemset(1),
		Consequent: NewItemset(2),
		Support:    0.5, Confidence: 0.8, Lift: 1.25,
	}
	s := r.String()
	if !strings.Contains(s, "=>") || !strings.Contains(s, "0.800") {
		t.Fatalf("String = %q", s)
	}
}
