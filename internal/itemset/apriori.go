package itemset

import (
	"fmt"
	"math"
)

// TxSource streams a dataset of transactions, one full pass per ForEach call.
type TxSource interface {
	ForEach(fn func(tx Transaction) error) error
}

// TxSourceFunc adapts a function to TxSource.
type TxSourceFunc func(fn func(tx Transaction) error) error

// ForEach invokes the function.
func (f TxSourceFunc) ForEach(fn func(tx Transaction) error) error { return f(fn) }

// SliceSource adapts an in-memory transaction slice to TxSource.
type SliceSource []Transaction

// ForEach iterates the slice.
func (s SliceSource) ForEach(fn func(tx Transaction) error) error {
	for _, tx := range s {
		if err := fn(tx); err != nil {
			return err
		}
	}
	return nil
}

// MinCount converts a fractional minimum support κ into the smallest absolute
// count that satisfies σ = count/n ≥ κ.
func MinCount(n int, minsup float64) int {
	if n == 0 {
		return 1
	}
	c := int(math.Ceil(minsup*float64(n) - 1e-9))
	if c < 1 {
		c = 1
	}
	return c
}

// Lattice is a frequent-itemset model: the set of frequent itemsets
// L(D, κ) and the negative border NB⁻(D, κ), both with absolute support
// counts, plus the number of transactions they were counted over. It is the
// model maintained by the BORDERS algorithm and the structural+measure
// component FOCUS reads.
type Lattice struct {
	// N is the number of transactions in the dataset the counts refer to.
	N int
	// MinSupport is the fractional threshold κ.
	MinSupport float64
	// Frequent maps each frequent itemset to its absolute support count.
	Frequent map[Key]int
	// Border maps each negative-border itemset to its absolute support
	// count. By definition these are infrequent itemsets all of whose proper
	// subsets are frequent; infrequent 1-itemsets (and, when the lattice is
	// built over a known universe, never-seen items) are included.
	Border map[Key]int
	// Passes counts full dataset scans performed while building or
	// maintaining the lattice (a cost metric).
	Passes int
}

// NewLattice returns an empty lattice at the given threshold.
func NewLattice(minsup float64) *Lattice {
	return &Lattice{
		MinSupport: minsup,
		Frequent:   make(map[Key]int),
		Border:     make(map[Key]int),
	}
}

// Support returns the fractional support of an itemset if it is tracked
// (frequent or border), with ok=false otherwise.
func (l *Lattice) Support(x Itemset) (float64, bool) {
	k := x.Key()
	if c, ok := l.Frequent[k]; ok {
		return float64(c) / float64(max(l.N, 1)), true
	}
	if c, ok := l.Border[k]; ok {
		return float64(c) / float64(max(l.N, 1)), true
	}
	return 0, false
}

// FrequentSets returns the frequent itemsets in deterministic order.
func (l *Lattice) FrequentSets() []Itemset {
	out := make([]Itemset, 0, len(l.Frequent))
	for k := range l.Frequent {
		out = append(out, k.Itemset())
	}
	SortItemsets(out)
	return out
}

// BorderSets returns the negative-border itemsets in deterministic order.
func (l *Lattice) BorderSets() []Itemset {
	out := make([]Itemset, 0, len(l.Border))
	for k := range l.Border {
		out = append(out, k.Itemset())
	}
	SortItemsets(out)
	return out
}

// Clone deep-copies the lattice.
func (l *Lattice) Clone() *Lattice {
	c := &Lattice{
		N:          l.N,
		MinSupport: l.MinSupport,
		Frequent:   make(map[Key]int, len(l.Frequent)),
		Border:     make(map[Key]int, len(l.Border)),
		Passes:     l.Passes,
	}
	for k, v := range l.Frequent {
		c.Frequent[k] = v
	}
	for k, v := range l.Border {
		c.Border[k] = v
	}
	return c
}

// maxLen returns the size of the largest frequent itemset.
func (l *Lattice) maxLen() int {
	m := 0
	for k := range l.Frequent {
		if n := len(k.Itemset()); n > m {
			m = n
		}
	}
	return m
}

// Validate checks the lattice invariants: every frequent itemset meets the
// threshold, every border itemset misses it, every proper subset of a border
// itemset is frequent, and downward closure holds for the frequent set. It
// is used by tests and by the AuM deletion path as a safety net.
func (l *Lattice) Validate() error {
	minCount := MinCount(l.N, l.MinSupport)
	for k, c := range l.Frequent {
		if c < minCount {
			return fmt.Errorf("itemset: frequent %v has count %d < %d", k.Itemset(), c, minCount)
		}
		x := k.Itemset()
		for i := range x {
			if len(x) == 1 {
				break
			}
			if _, ok := l.Frequent[x.Without(i).Key()]; !ok {
				return fmt.Errorf("itemset: frequent %v has infrequent subset %v", x, x.Without(i))
			}
		}
	}
	for k, c := range l.Border {
		if c >= minCount {
			return fmt.Errorf("itemset: border %v has count %d >= %d", k.Itemset(), c, minCount)
		}
		if _, dup := l.Frequent[k]; dup {
			return fmt.Errorf("itemset: %v in both frequent and border", k.Itemset())
		}
		x := k.Itemset()
		for i := range x {
			if len(x) == 1 {
				break
			}
			if _, ok := l.Frequent[x.Without(i).Key()]; !ok {
				return fmt.Errorf("itemset: border %v has infrequent subset %v", x, x.Without(i))
			}
		}
	}
	return nil
}

// Apriori computes the full lattice L(D, κ) ∪ NB⁻(D, κ) of the dataset by
// level-wise candidate generation (AS94/AMS+96). universe optionally names
// the full item universe so that items never occurring in D still enter the
// negative border (their support, zero, is below any κ); pass nil to restrict
// the universe to observed items.
func Apriori(src TxSource, universe []Item, minsup float64) (*Lattice, error) {
	if minsup <= 0 || minsup >= 1 {
		return nil, fmt.Errorf("itemset: minimum support %v outside (0, 1)", minsup)
	}
	l := NewLattice(minsup)

	// Pass 1: count single items.
	itemCounts := make(map[Item]int)
	for _, it := range universe {
		itemCounts[it] = 0
	}
	n := 0
	err := src.ForEach(func(tx Transaction) error {
		n++
		for _, it := range tx.Items {
			itemCounts[it]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.N = n
	l.Passes = 1
	minCount := MinCount(n, minsup)

	var level []Itemset
	for it, c := range itemCounts {
		x := Itemset{it}
		if c >= minCount {
			l.Frequent[x.Key()] = c
			level = append(level, x)
		} else {
			l.Border[x.Key()] = c
		}
	}

	// Level-wise expansion.
	for len(level) > 0 {
		cands := PruneByFrequent(PrefixJoin(level), frequencyKeys(l.Frequent))
		if len(cands) == 0 {
			break
		}
		tree := NewPrefixTree(cands)
		err := src.ForEach(func(tx Transaction) error {
			tree.CountTx(tx)
			return nil
		})
		if err != nil {
			return nil, err
		}
		l.Passes++
		counts := tree.Counts()
		level = level[:0]
		for _, c := range cands {
			k := c.Key()
			if counts[k] >= minCount {
				l.Frequent[k] = counts[k]
				level = append(level, c)
			} else {
				l.Border[k] = counts[k]
			}
		}
	}
	return l, nil
}

func frequencyKeys(m map[Key]int) map[Key]bool {
	out := make(map[Key]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
