package itemset

// PrefixTree is the candidate-counting structure of Mueller (Mue95) used by
// the BORDERS update phase: candidates are stored along item-ordered paths
// and one pass over the transactions increments the count of every candidate
// contained in each transaction. Counting a candidate set this way while
// scanning the entire selected dataset is what the paper calls PT-Scan.
type PrefixTree struct {
	root  ptNode
	size  int
	cands []Itemset
}

type ptNode struct {
	children map[Item]*ptNode
	count    int
	terminal bool
}

// NewPrefixTree builds a tree over the candidate itemsets. Duplicate
// candidates are collapsed.
func NewPrefixTree(cands []Itemset) *PrefixTree {
	t := &PrefixTree{}
	for _, c := range cands {
		if t.insert(c) {
			t.cands = append(t.cands, c)
		}
	}
	return t
}

func (t *PrefixTree) insert(c Itemset) bool {
	n := &t.root
	for _, it := range c {
		if n.children == nil {
			n.children = make(map[Item]*ptNode)
		}
		child := n.children[it]
		if child == nil {
			child = &ptNode{}
			n.children[it] = child
		}
		n = child
	}
	if n.terminal {
		return false
	}
	n.terminal = true
	t.size++
	return true
}

// Size returns the number of distinct candidates in the tree.
func (t *PrefixTree) Size() int { return t.size }

// CountTx increments the count of every candidate contained in tx.
func (t *PrefixTree) CountTx(tx Transaction) {
	countSubsets(&t.root, tx.Items)
}

func countSubsets(n *ptNode, items Itemset) {
	if len(n.children) == 0 {
		return
	}
	for i, it := range items {
		child, ok := n.children[it]
		if !ok {
			continue
		}
		if child.terminal {
			child.count++
		}
		countSubsets(child, items[i+1:])
	}
}

// Counts returns the support count of every candidate, keyed by itemset key.
func (t *PrefixTree) Counts() map[Key]int {
	out := make(map[Key]int, t.size)
	for _, c := range t.cands {
		n := &t.root
		for _, it := range c {
			n = n.children[it]
		}
		out[c.Key()] = n.count
	}
	return out
}

// Reset zeroes all candidate counts, keeping the structure.
func (t *PrefixTree) Reset() {
	var walk func(n *ptNode)
	walk = func(n *ptNode) {
		n.count = 0
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(&t.root)
}
