// Package itemset provides the frequent-itemset fundamentals DEMON builds on:
// items, itemsets, transactions, support counting, the negative border, the
// Apriori algorithm (the from-scratch baseline), and the two candidate
// counting structures the paper references — the prefix tree of Mueller
// (PT-Scan, the counting procedure of the BORDERS update phase) and the hash
// tree of Agrawal et al. (footnote 7).
package itemset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Item is a literal from the item universe I = {i1, ..., in}. Items are
// small non-negative integers.
type Item int32

// Itemset is a set of items, maintained sorted in increasing order with no
// duplicates. The zero value is the empty itemset.
type Itemset []Item

// NewItemset builds a canonical (sorted, deduplicated) itemset from items in
// any order.
func NewItemset(items ...Item) Itemset {
	if len(items) == 0 {
		return nil
	}
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, it := range s[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// Len returns the number of items; the paper calls a set of size k a
// k-itemset.
func (s Itemset) Len() int { return len(s) }

// Contains reports whether the itemset includes item.
func (s Itemset) Contains(item Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= item })
	return i < len(s) && s[i] == item
}

// SubsetOf reports whether s ⊆ t. Both must be canonical.
func (s Itemset) SubsetOf(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j >= len(t) || t[j] != x {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether two canonical itemsets contain the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Union returns the canonical union s ∪ t.
func (s Itemset) Union(t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Without returns a new itemset with the item at index idx removed; it is the
// (len-1)-subset used when enumerating proper subsets for Apriori pruning.
func (s Itemset) Without(idx int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:idx]...)
	out = append(out, s[idx+1:]...)
	return out
}

// Clone returns an independent copy.
func (s Itemset) Clone() Itemset {
	if s == nil {
		return nil
	}
	out := make(Itemset, len(s))
	copy(out, s)
	return out
}

// Key returns a byte-string key usable in maps, unique per canonical itemset.
func (s Itemset) Key() Key {
	buf := make([]byte, 0, len(s)*3)
	for _, it := range s {
		buf = binary.AppendUvarint(buf, uint64(it))
	}
	return Key(buf)
}

// String renders the itemset as {a, b, c}.
func (s Itemset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, it := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", it)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Key is the map-key form of a canonical itemset produced by Itemset.Key.
type Key string

// Itemset decodes the key back into the itemset it was built from.
func (k Key) Itemset() Itemset {
	buf := []byte(k)
	var s Itemset
	for len(buf) > 0 {
		x, n := binary.Uvarint(buf)
		if n <= 0 {
			panic("itemset: corrupt Key")
		}
		s = append(s, Item(x))
		buf = buf[n:]
	}
	return s
}

// PrefixJoin implements the candidate generation join of Agrawal et al.
// (AMS+96), as used by both Apriori and the BORDERS update phase: two
// k-itemsets sharing their first k-1 items join into a (k+1)-itemset. The
// input must be a set of canonical k-itemsets; the output is the sorted list
// of joined candidates before subset pruning.
func PrefixJoin(sets []Itemset) []Itemset {
	if len(sets) == 0 {
		return nil
	}
	k := len(sets[0])
	sorted := make([]Itemset, len(sets))
	copy(sorted, sets)
	sort.Slice(sorted, func(i, j int) bool { return lessItemset(sorted[i], sorted[j]) })
	var out []Itemset
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			a, b := sorted[i], sorted[j]
			if len(a) != k || len(b) != k {
				panic("itemset: PrefixJoin requires uniform sizes")
			}
			if !samePrefix(a, b, k-1) {
				break // sorted order: no later b shares the prefix either
			}
			cand := make(Itemset, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			out = append(out, cand)
		}
	}
	return out
}

// PruneByFrequent removes candidates having any (k-1)-subset absent from the
// frequent set, the standard Apriori prune. frequent maps the keys of all
// frequent itemsets of size k.
func PruneByFrequent(cands []Itemset, frequent map[Key]bool) []Itemset {
	out := cands[:0]
	for _, c := range cands {
		ok := true
		for i := range c {
			if !frequent[c.Without(i).Key()] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

func samePrefix(a, b Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessItemset(a, b Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// SortItemsets orders itemsets lexicographically (shorter first on ties), a
// stable order for deterministic output.
func SortItemsets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool { return lessItemset(sets[i], sets[j]) })
}
