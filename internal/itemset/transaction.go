package itemset

import (
	"fmt"
	"sync"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
)

// Transaction is a customer transaction: a canonical itemset plus the unique
// transaction identifier (TID) assigned in arrival order. TIDs increase
// across blocks, which is what makes per-block TID-lists mergeable.
type Transaction struct {
	TID   int
	Items Itemset
}

// Contains reports whether the transaction contains the itemset X ⊆ T.
func (t Transaction) Contains(x Itemset) bool { return x.SubsetOf(t.Items) }

// TxBlock is one block of transactions in a systematically evolving
// database. Transactions carry consecutive TIDs starting at FirstTID.
type TxBlock struct {
	ID       blockseq.ID
	FirstTID int
	Txs      []Transaction
}

// Len returns the number of transactions in the block.
func (b *TxBlock) Len() int { return len(b.Txs) }

// NewTxBlock assembles a block from raw item slices, assigning consecutive
// TIDs starting at firstTID and canonicalizing every transaction.
func NewTxBlock(id blockseq.ID, firstTID int, rows [][]Item) *TxBlock {
	b := &TxBlock{ID: id, FirstTID: firstTID, Txs: make([]Transaction, len(rows))}
	for i, row := range rows {
		b.Txs[i] = Transaction{TID: firstTID + i, Items: NewItemset(row...)}
	}
	return b
}

// Encode serializes the block: id, firstTID, count, then each transaction's
// sorted item list (delta-encoded).
func (b *TxBlock) Encode() []byte {
	buf := diskio.AppendUvarint(nil, uint64(b.ID))
	buf = diskio.AppendUvarint(buf, uint64(b.FirstTID))
	buf = diskio.AppendUvarint(buf, uint64(len(b.Txs)))
	ints := make([]int, 0, 32)
	for _, tx := range b.Txs {
		ints = ints[:0]
		for _, it := range tx.Items {
			ints = append(ints, int(it))
		}
		buf = diskio.AppendSortedInts(buf, ints)
	}
	return buf
}

// DecodeTxBlock reverses Encode.
func DecodeTxBlock(data []byte) (*TxBlock, error) {
	id, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("itemset: decoding block id: %w", err)
	}
	first, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("itemset: decoding first TID: %w", err)
	}
	n, data, err := diskio.ReadUvarint(data)
	if err != nil {
		return nil, fmt.Errorf("itemset: decoding tx count: %w", err)
	}
	b := &TxBlock{ID: blockseq.ID(id), FirstTID: int(first), Txs: make([]Transaction, n)}
	for i := range b.Txs {
		ints, rest, err := diskio.ReadSortedInts(data)
		if err != nil {
			return nil, fmt.Errorf("itemset: decoding tx %d: %w", i, err)
		}
		data = rest
		items := make(Itemset, len(ints))
		for j, x := range ints {
			items[j] = Item(x)
		}
		b.Txs[i] = Transaction{TID: int(first) + i, Items: items}
	}
	return b, nil
}

// BlockStore persists transaction blocks through a diskio.Store and tracks
// the total transaction count per block so supports can be turned into
// fractions without re-reading data. It is safe for concurrent use (the
// parallel counters read disjoint block shards through one BlockStore).
type BlockStore struct {
	store diskio.Store
	mu    sync.Mutex
	sizes map[blockseq.ID]int // block id -> transaction count
}

// NewBlockStore wraps store.
func NewBlockStore(store diskio.Store) *BlockStore {
	return &BlockStore{store: store, sizes: make(map[blockseq.ID]int)}
}

func (s *BlockStore) setSize(id blockseq.ID, n int) {
	s.mu.Lock()
	s.sizes[id] = n
	s.mu.Unlock()
}

func (s *BlockStore) size(id blockseq.ID) (int, bool) {
	s.mu.Lock()
	n, ok := s.sizes[id]
	s.mu.Unlock()
	return n, ok
}

func blockKey(id blockseq.ID) string { return fmt.Sprintf("txblock/%08d", id) }

// Put stores the block.
func (s *BlockStore) Put(b *TxBlock) error {
	if err := s.store.Put(blockKey(b.ID), b.Encode()); err != nil {
		return err
	}
	s.setSize(b.ID, len(b.Txs))
	return nil
}

// Get loads the block with the given identifier.
func (s *BlockStore) Get(id blockseq.ID) (*TxBlock, error) {
	data, err := s.store.Get(blockKey(id))
	if err != nil {
		return nil, err
	}
	b, err := DecodeTxBlock(data)
	if err != nil {
		return nil, err
	}
	s.setSize(id, len(b.Txs))
	return b, nil
}

// NumTx returns the transaction count of a block, reading only the header if
// the count is not cached.
func (s *BlockStore) NumTx(id blockseq.ID) (int, error) {
	if n, ok := s.size(id); ok {
		return n, nil
	}
	b, err := s.Get(id)
	if err != nil {
		return 0, err
	}
	return len(b.Txs), nil
}

// TotalTx sums the transaction counts of the given blocks.
func (s *BlockStore) TotalTx(ids []blockseq.ID) (int, error) {
	total := 0
	for _, id := range ids {
		n, err := s.NumTx(id)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// ForEachTx streams every transaction of the given blocks, in block then TID
// order, to fn. It is the full-dataset scan that PT-Scan performs.
func (s *BlockStore) ForEachTx(ids []blockseq.ID, fn func(tx Transaction) error) error {
	for _, id := range ids {
		b, err := s.Get(id)
		if err != nil {
			return err
		}
		for _, tx := range b.Txs {
			if err := fn(tx); err != nil {
				return err
			}
		}
	}
	return nil
}

// Store exposes the underlying diskio.Store (for I/O accounting).
func (s *BlockStore) Store() diskio.Store { return s.store }
