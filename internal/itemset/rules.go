package itemset

import (
	"fmt"
	"sort"
)

// Rule is an association rule X ⇒ Y (X, Y disjoint, non-empty): customers
// buying X also buy Y. The DEMON paper's motivating scenarios consume
// frequent itemsets in this form ("the set of frequent itemsets discovered
// from the database is used by an analyst to devise marketing strategies").
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	// Support is the fraction of transactions containing X ∪ Y.
	Support float64
	// Confidence is σ(X ∪ Y) / σ(X).
	Confidence float64
	// Lift is Confidence / σ(Y); values above 1 indicate positive
	// correlation.
	Lift float64
}

// String renders "X => Y (sup 0.10, conf 0.80, lift 1.3)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup %.3f, conf %.3f, lift %.2f)",
		r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// maxRuleItemset bounds subset enumeration; frequent itemsets beyond this
// size are skipped (2^20 subsets would be pathological anyway).
const maxRuleItemset = 20

// Rules derives all association rules meeting the confidence threshold from
// the lattice's frequent itemsets (the rule-generation step of AMS+96). The
// supports of all antecedents are available in the lattice by downward
// closure, so no data access is needed. Rules are returned in deterministic
// order: by descending confidence, then descending support, then
// antecedent/consequent keys.
func Rules(l *Lattice, minConf float64) ([]Rule, error) {
	if minConf <= 0 || minConf > 1 {
		return nil, fmt.Errorf("itemset: minimum confidence %v outside (0, 1]", minConf)
	}
	if l.N == 0 {
		return nil, nil
	}
	var out []Rule
	n := float64(l.N)
	for k, zCount := range l.Frequent {
		z := k.Itemset()
		if len(z) < 2 {
			continue
		}
		if len(z) > maxRuleItemset {
			return nil, fmt.Errorf("itemset: frequent itemset %v too large for rule enumeration", z)
		}
		support := float64(zCount) / n
		// Enumerate non-empty proper subsets of z as antecedents.
		for mask := 1; mask < (1<<len(z))-1; mask++ {
			ante := make(Itemset, 0, len(z))
			cons := make(Itemset, 0, len(z))
			for i, it := range z {
				if mask&(1<<i) != 0 {
					ante = append(ante, it)
				} else {
					cons = append(cons, it)
				}
			}
			aCount, ok := l.Frequent[ante.Key()]
			if !ok || aCount == 0 {
				// Downward closure guarantees presence; a miss means the
				// lattice is inconsistent.
				return nil, fmt.Errorf("itemset: lattice misses subset %v of frequent %v", ante, z)
			}
			conf := float64(zCount) / float64(aCount)
			if conf < minConf {
				continue
			}
			cCount, ok := l.Frequent[cons.Key()]
			if !ok || cCount == 0 {
				return nil, fmt.Errorf("itemset: lattice misses subset %v of frequent %v", cons, z)
			}
			lift := conf / (float64(cCount) / n)
			out = append(out, Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    support,
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if ka, kb := a.Antecedent.Key(), b.Antecedent.Key(); ka != kb {
			return ka < kb
		}
		return a.Consequent.Key() < b.Consequent.Key()
	})
	return out, nil
}
