package itemset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewItemsetCanonicalizes(t *testing.T) {
	s := NewItemset(5, 1, 3, 1, 5)
	want := Itemset{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("NewItemset = %v, want %v", s, want)
	}
	if NewItemset() != nil {
		t.Fatal("empty NewItemset should be nil")
	}
}

func TestContains(t *testing.T) {
	s := NewItemset(2, 4, 6)
	for _, it := range []Item{2, 4, 6} {
		if !s.Contains(it) {
			t.Errorf("Contains(%d) = false", it)
		}
	}
	for _, it := range []Item{1, 3, 5, 7} {
		if s.Contains(it) {
			t.Errorf("Contains(%d) = true", it)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	tests := []struct {
		a, b Itemset
		want bool
	}{
		{NewItemset(), NewItemset(1, 2), true},
		{NewItemset(1), NewItemset(1, 2), true},
		{NewItemset(2), NewItemset(1, 2), true},
		{NewItemset(1, 2), NewItemset(1, 2), true},
		{NewItemset(1, 3), NewItemset(1, 2), false},
		{NewItemset(1, 2, 3), NewItemset(1, 2), false},
		{NewItemset(0), NewItemset(1, 2), false},
	}
	for _, tc := range tests {
		if got := tc.a.SubsetOf(tc.b); got != tc.want {
			t.Errorf("%v ⊆ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestUnion(t *testing.T) {
	got := NewItemset(1, 3).Union(NewItemset(2, 3, 5))
	want := Itemset{1, 2, 3, 5}
	if !got.Equal(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
}

func TestWithout(t *testing.T) {
	s := NewItemset(1, 2, 3)
	if got := s.Without(1); !got.Equal(Itemset{1, 3}) {
		t.Fatalf("Without(1) = %v", got)
	}
	// Original unchanged.
	if !s.Equal(Itemset{1, 2, 3}) {
		t.Fatal("Without mutated receiver")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		items := make([]Item, len(raw))
		for i, r := range raw {
			items[i] = Item(r)
		}
		s := NewItemset(items...)
		return s.Key().Itemset().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyUnique(t *testing.T) {
	// Varint encoding must not collide across different splits, e.g. {300}
	// vs {44, 2} style confusions.
	sets := []Itemset{
		NewItemset(300),
		NewItemset(44, 2),
		NewItemset(1, 2, 3),
		NewItemset(12, 3),
		NewItemset(1, 23),
	}
	seen := make(map[Key]Itemset)
	for _, s := range sets {
		k := s.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision between %v and %v", prev, s)
		}
		seen[k] = s
	}
}

func TestPrefixJoin(t *testing.T) {
	// The classic example: {1,2},{1,3},{2,3} join to {1,2,3} (from the
	// {1,2}+{1,3} pair); {2,3} shares no prefix with the others.
	sets := []Itemset{NewItemset(1, 2), NewItemset(1, 3), NewItemset(2, 3)}
	got := PrefixJoin(sets)
	if len(got) != 1 || !got[0].Equal(Itemset{1, 2, 3}) {
		t.Fatalf("PrefixJoin = %v, want [{1,2,3}]", got)
	}
	// Joining 1-itemsets yields all pairs.
	got = PrefixJoin([]Itemset{NewItemset(1), NewItemset(2), NewItemset(3)})
	if len(got) != 3 {
		t.Fatalf("PrefixJoin of 3 singletons gave %d pairs, want 3", len(got))
	}
	if PrefixJoin(nil) != nil {
		t.Fatal("PrefixJoin(nil) should be nil")
	}
}

func TestPruneByFrequent(t *testing.T) {
	freq := map[Key]bool{
		NewItemset(1, 2).Key(): true,
		NewItemset(1, 3).Key(): true,
		NewItemset(2, 3).Key(): true,
		NewItemset(1, 4).Key(): true,
	}
	cands := []Itemset{NewItemset(1, 2, 3), NewItemset(1, 2, 4)}
	got := PruneByFrequent(cands, freq)
	// {1,2,4} has subset {2,4} infrequent, so only {1,2,3} survives.
	if len(got) != 1 || !got[0].Equal(Itemset{1, 2, 3}) {
		t.Fatalf("PruneByFrequent = %v", got)
	}
}

// naiveCount counts candidates by brute-force containment checks.
func naiveCount(cands []Itemset, txs []Transaction) map[Key]int {
	out := make(map[Key]int, len(cands))
	for _, c := range cands {
		out[c.Key()] = 0
	}
	for _, tx := range txs {
		for _, c := range cands {
			if tx.Contains(c) {
				out[c.Key()]++
			}
		}
	}
	return out
}

func randomTxs(rng *rand.Rand, n, universe, avgLen int) []Transaction {
	txs := make([]Transaction, n)
	for i := range txs {
		m := 1 + rng.Intn(2*avgLen)
		items := make([]Item, m)
		for j := range items {
			items[j] = Item(rng.Intn(universe))
		}
		txs[i] = Transaction{TID: i, Items: NewItemset(items...)}
	}
	return txs
}

func randomCands(rng *rand.Rand, n, universe, size int) []Itemset {
	var out []Itemset
	seen := make(map[Key]bool)
	for len(out) < n {
		items := make([]Item, size)
		for j := range items {
			items[j] = Item(rng.Intn(universe))
		}
		c := NewItemset(items...)
		if len(c) != size || seen[c.Key()] {
			continue
		}
		seen[c.Key()] = true
		out = append(out, c)
	}
	return out
}

func TestPrefixTreeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		txs := randomTxs(rng, 50, 20, 6)
		size := 1 + rng.Intn(3)
		cands := randomCands(rng, 15, 20, size)
		tree := NewPrefixTree(cands)
		for _, tx := range txs {
			tree.CountTx(tx)
		}
		want := naiveCount(cands, txs)
		got := tree.Counts()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: prefix tree counts diverge from naive", trial)
		}
	}
}

func TestPrefixTreeMixedSizes(t *testing.T) {
	cands := []Itemset{NewItemset(1), NewItemset(1, 2), NewItemset(1, 2, 3), NewItemset(4)}
	txs := []Transaction{
		{TID: 0, Items: NewItemset(1, 2, 3)},
		{TID: 1, Items: NewItemset(1, 2)},
		{TID: 2, Items: NewItemset(4, 5)},
	}
	tree := NewPrefixTree(cands)
	for _, tx := range txs {
		tree.CountTx(tx)
	}
	counts := tree.Counts()
	wants := map[string]int{"{1}": 2, "{1, 2}": 2, "{1, 2, 3}": 1, "{4}": 1}
	for _, c := range cands {
		if got := counts[c.Key()]; got != wants[c.String()] {
			t.Errorf("count(%v) = %d, want %d", c, got, wants[c.String()])
		}
	}
}

func TestPrefixTreeDedupAndReset(t *testing.T) {
	c := NewItemset(1, 2)
	tree := NewPrefixTree([]Itemset{c, c})
	if tree.Size() != 1 {
		t.Fatalf("Size = %d, want 1 after dedup", tree.Size())
	}
	tree.CountTx(Transaction{Items: NewItemset(1, 2, 3)})
	if tree.Counts()[c.Key()] != 1 {
		t.Fatal("count != 1")
	}
	tree.Reset()
	if tree.Counts()[c.Key()] != 0 {
		t.Fatal("Reset did not zero counts")
	}
}

func TestHashTreeMatchesPrefixTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		txs := randomTxs(rng, 60, 25, 7)
		size := 1 + rng.Intn(3)
		cands := randomCands(rng, 20, 25, size)
		pt := NewPrefixTree(cands)
		ht := NewHashTree(cands, 1+rng.Intn(7), 1+rng.Intn(4))
		for _, tx := range txs {
			pt.CountTx(tx)
			ht.CountTx(tx)
		}
		if !reflect.DeepEqual(pt.Counts(), ht.Counts()) {
			t.Fatalf("trial %d: hash tree diverges from prefix tree", trial)
		}
	}
}

// TestHashTreeMixedLengths: a short candidate hashing into a subtree that
// longer candidates have already split deeper than the short one's length must
// be parked and counted, not walked past its end. Fanout 1 funnels every
// candidate down a single path, forcing maximal splits.
func TestHashTreeMixedLengths(t *testing.T) {
	cands := []Itemset{
		NewItemset(1, 2, 3),
		NewItemset(1, 2, 4),
		NewItemset(1, 2),
		NewItemset(1),
	}
	ht := NewHashTree(cands, 1, 1)
	pt := NewPrefixTree(cands)
	txs := []Transaction{
		{TID: 0, Items: NewItemset(1, 2, 3)},
		{TID: 1, Items: NewItemset(1, 2, 4, 5)},
		{TID: 2, Items: NewItemset(1, 2)},
		{TID: 3, Items: NewItemset(2, 3)},
	}
	for _, tx := range txs {
		ht.CountTx(tx)
		pt.CountTx(tx)
	}
	if !reflect.DeepEqual(pt.Counts(), ht.Counts()) {
		t.Fatalf("mixed-length counts = %v, want %v", ht.Counts(), pt.Counts())
	}
}

// TestHashTreeMixedLengthsRandom cross-checks trees built over candidates of
// several lengths at once against the prefix tree.
func TestHashTreeMixedLengthsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		txs := randomTxs(rng, 60, 25, 7)
		var cands []Itemset
		for size := 1; size <= 3; size++ {
			cands = append(cands, randomCands(rng, 12, 25, size)...)
		}
		pt := NewPrefixTree(cands)
		ht := NewHashTree(cands, 1+rng.Intn(7), 1+rng.Intn(4))
		for _, tx := range txs {
			pt.CountTx(tx)
			ht.CountTx(tx)
		}
		if !reflect.DeepEqual(pt.Counts(), ht.Counts()) {
			t.Fatalf("trial %d: hash tree diverges from prefix tree", trial)
		}
	}
}

func TestHashTreeReset(t *testing.T) {
	cands := []Itemset{NewItemset(1, 2)}
	ht := NewHashTree(cands, 4, 2)
	ht.CountTx(Transaction{Items: NewItemset(1, 2)})
	ht.Reset()
	if ht.Counts()[cands[0].Key()] != 0 {
		t.Fatal("Reset did not zero counts")
	}
}

func TestHashTreePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHashTree(fanout 0) did not panic")
		}
	}()
	NewHashTree(nil, 0, 1)
}

// TestPrefixJoinMatchesNaive: the prefix join plus subset prune must produce
// exactly the (k+1)-itemsets all of whose k-subsets are in the input — the
// Apriori candidate-generation contract.
func TestPrefixJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(3)
		universe := 8
		// A random downward-closed-ish family of k-itemsets.
		var level []Itemset
		seen := make(map[Key]bool)
		for len(level) < 5+rng.Intn(10) {
			items := make([]Item, k)
			for j := range items {
				items[j] = Item(rng.Intn(universe))
			}
			c := NewItemset(items...)
			if len(c) != k || seen[c.Key()] {
				continue
			}
			seen[c.Key()] = true
			level = append(level, c)
		}

		got := PruneByFrequent(PrefixJoin(level), keysOf(level))
		gotKeys := make(map[Key]bool, len(got))
		for _, c := range got {
			gotKeys[c.Key()] = true
		}

		// Naive: enumerate all (k+1)-subsets of the universe and keep those
		// whose every k-subset is in the level.
		var want []Itemset
		var rec func(start Item, cur Itemset)
		rec = func(start Item, cur Itemset) {
			if len(cur) == k+1 {
				ok := true
				for i := range cur {
					if !seen[cur.Without(i).Key()] {
						ok = false
						break
					}
				}
				if ok {
					want = append(want, cur.Clone())
				}
				return
			}
			for it := start; int(it) < universe; it++ {
				rec(it+1, append(cur, it))
			}
		}
		rec(0, nil)

		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d): %d candidates, want %d", trial, k, len(got), len(want))
		}
		for _, c := range want {
			if !gotKeys[c.Key()] {
				t.Fatalf("trial %d: candidate %v missing", trial, c)
			}
		}
	}
}

func keysOf(sets []Itemset) map[Key]bool {
	m := make(map[Key]bool, len(sets))
	for _, s := range sets {
		m[s.Key()] = true
	}
	return m
}
