package itemset

import (
	"math/rand"
	"testing"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/diskio"
)

func TestTxBlockEncodeDecode(t *testing.T) {
	b := NewTxBlock(3, 100, [][]Item{
		{5, 1, 3},
		{},
		{2},
	})
	if b.Txs[0].TID != 100 || b.Txs[2].TID != 102 {
		t.Fatalf("TIDs not consecutive: %v", b.Txs)
	}
	dec, err := DecodeTxBlock(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != 3 || dec.FirstTID != 100 || dec.Len() != 3 {
		t.Fatalf("decoded header %+v", dec)
	}
	if !dec.Txs[0].Items.Equal(Itemset{1, 3, 5}) {
		t.Fatalf("decoded tx 0 = %v", dec.Txs[0].Items)
	}
	if len(dec.Txs[1].Items) != 0 {
		t.Fatalf("decoded empty tx = %v", dec.Txs[1].Items)
	}
}

func TestTxBlockDecodeCorrupt(t *testing.T) {
	b := NewTxBlock(1, 0, [][]Item{{1, 2}, {3}})
	enc := b.Encode()
	if _, err := DecodeTxBlock(enc[:len(enc)-1]); err == nil {
		t.Fatal("DecodeTxBlock accepted truncated data")
	}
	if _, err := DecodeTxBlock(nil); err == nil {
		t.Fatal("DecodeTxBlock accepted empty data")
	}
}

func TestTxBlockRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(40)
		rows := make([][]Item, n)
		for i := range rows {
			m := rng.Intn(10)
			rows[i] = make([]Item, m)
			for j := range rows[i] {
				rows[i][j] = Item(rng.Intn(1000))
			}
		}
		b := NewTxBlock(blockseq.ID(trial+1), trial*1000, rows)
		dec, err := DecodeTxBlock(b.Encode())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if dec.Len() != b.Len() {
			t.Fatalf("trial %d: len %d != %d", trial, dec.Len(), b.Len())
		}
		for i := range b.Txs {
			if dec.Txs[i].TID != b.Txs[i].TID || !dec.Txs[i].Items.Equal(b.Txs[i].Items) {
				t.Fatalf("trial %d tx %d mismatch", trial, i)
			}
		}
	}
}

func TestBlockStore(t *testing.T) {
	bs := NewBlockStore(diskio.NewMemStore())
	b1 := NewTxBlock(1, 0, [][]Item{{1, 2}, {2, 3}})
	b2 := NewTxBlock(2, 2, [][]Item{{1}})
	if err := bs.Put(b1); err != nil {
		t.Fatal(err)
	}
	if err := bs.Put(b2); err != nil {
		t.Fatal(err)
	}

	got, err := bs.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("block 1 len = %d", got.Len())
	}

	n, err := bs.NumTx(2)
	if err != nil || n != 1 {
		t.Fatalf("NumTx(2) = %d, %v", n, err)
	}
	total, err := bs.TotalTx([]blockseq.ID{1, 2})
	if err != nil || total != 3 {
		t.Fatalf("TotalTx = %d, %v", total, err)
	}

	var tids []int
	err = bs.ForEachTx([]blockseq.ID{1, 2}, func(tx Transaction) error {
		tids = append(tids, tx.TID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 3 || tids[0] != 0 || tids[2] != 2 {
		t.Fatalf("ForEachTx TIDs = %v", tids)
	}

	if _, err := bs.Get(99); err == nil {
		t.Fatal("Get of missing block succeeded")
	}
}

func TestBlockStoreNumTxUncached(t *testing.T) {
	store := diskio.NewMemStore()
	bs := NewBlockStore(store)
	if err := bs.Put(NewTxBlock(1, 0, [][]Item{{1}, {2}, {3}})); err != nil {
		t.Fatal(err)
	}
	// A fresh BlockStore over the same underlying store must recover counts
	// from disk.
	bs2 := NewBlockStore(store)
	n, err := bs2.NumTx(1)
	if err != nil || n != 3 {
		t.Fatalf("NumTx = %d, %v; want 3", n, err)
	}
}
