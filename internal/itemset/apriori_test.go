package itemset

import (
	"math/rand"
	"testing"
)

// naiveLattice enumerates all subsets up to maxLen of the universe by brute
// force and classifies them into frequent / negative border.
func naiveLattice(txs []Transaction, universe []Item, minsup float64) *Lattice {
	l := NewLattice(minsup)
	l.N = len(txs)
	minCount := MinCount(len(txs), minsup)

	count := func(x Itemset) int {
		c := 0
		for _, tx := range txs {
			if tx.Contains(x) {
				c++
			}
		}
		return c
	}

	// Enumerate subsets level by level so subsets are classified before
	// supersets.
	level := make([]Itemset, 0, len(universe))
	for _, it := range universe {
		level = append(level, Itemset{it})
	}
	for len(level) > 0 {
		var next []Itemset
		for _, x := range level {
			// Skip if any proper subset is not frequent (then x is neither
			// frequent nor on the border).
			allSubsFreq := true
			for i := range x {
				if len(x) == 1 {
					break
				}
				if _, ok := l.Frequent[x.Without(i).Key()]; !ok {
					allSubsFreq = false
					break
				}
			}
			if !allSubsFreq {
				continue
			}
			c := count(x)
			if c >= minCount {
				l.Frequent[x.Key()] = c
				// Extend by every larger item.
				for _, it := range universe {
					if len(x) > 0 && it > x[len(x)-1] {
						next = append(next, append(x.Clone(), it))
					}
				}
			} else {
				l.Border[x.Key()] = c
			}
		}
		// Dedup next level.
		seen := make(map[Key]bool)
		dedup := next[:0]
		for _, x := range next {
			if !seen[x.Key()] {
				seen[x.Key()] = true
				dedup = append(dedup, x)
			}
		}
		level = dedup
	}
	return l
}

func latticesEqual(t *testing.T, got, want *Lattice) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("N = %d, want %d", got.N, want.N)
	}
	if len(got.Frequent) != len(want.Frequent) {
		t.Fatalf("|L| = %d, want %d\n got: %v\nwant: %v",
			len(got.Frequent), len(want.Frequent), got.FrequentSets(), want.FrequentSets())
	}
	for k, c := range want.Frequent {
		if got.Frequent[k] != c {
			t.Fatalf("frequent %v count = %d, want %d", k.Itemset(), got.Frequent[k], c)
		}
	}
	if len(got.Border) != len(want.Border) {
		t.Fatalf("|NB| = %d, want %d\n got: %v\nwant: %v",
			len(got.Border), len(want.Border), got.BorderSets(), want.BorderSets())
	}
	for k, c := range want.Border {
		gc, ok := got.Border[k]
		if !ok || gc != c {
			t.Fatalf("border %v count = %d (present %v), want %d", k.Itemset(), gc, ok, c)
		}
	}
}

func TestAprioriSmallHandChecked(t *testing.T) {
	// 4 transactions, κ = 0.5 → minCount 2.
	txs := []Transaction{
		{TID: 0, Items: NewItemset(1, 2, 3)},
		{TID: 1, Items: NewItemset(1, 2)},
		{TID: 2, Items: NewItemset(1, 3)},
		{TID: 3, Items: NewItemset(4)},
	}
	universe := []Item{1, 2, 3, 4}
	l, err := Apriori(SliceSource(txs), universe, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wantFreq := map[string]int{"{1}": 3, "{2}": 2, "{3}": 2, "{1, 2}": 2, "{1, 3}": 2}
	if len(l.Frequent) != len(wantFreq) {
		t.Fatalf("frequent = %v", l.FrequentSets())
	}
	for s, c := range wantFreq {
		found := false
		for k, gc := range l.Frequent {
			if k.Itemset().String() == s {
				found = true
				if gc != c {
					t.Errorf("support(%s) = %d, want %d", s, gc, c)
				}
			}
		}
		if !found {
			t.Errorf("missing frequent itemset %s", s)
		}
	}
	// Border: {4} (count 1), {2,3} (count 1); {1,2,3} not on border since
	// {2,3} is infrequent.
	wantBorder := map[string]int{"{4}": 1, "{2, 3}": 1}
	if len(l.Border) != len(wantBorder) {
		t.Fatalf("border = %v", l.BorderSets())
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAprioriMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universe := make([]Item, 12)
	for i := range universe {
		universe[i] = Item(i)
	}
	for trial := 0; trial < 10; trial++ {
		txs := randomTxs(rng, 80, len(universe), 4)
		minsup := 0.05 + rng.Float64()*0.4
		got, err := Apriori(SliceSource(txs), universe, minsup)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveLattice(txs, universe, minsup)
		latticesEqual(t, got, want)
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestAprioriUnseenUniverseItemsEnterBorder(t *testing.T) {
	txs := []Transaction{{TID: 0, Items: NewItemset(1)}}
	l, err := Apriori(SliceSource(txs), []Item{1, 2, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []Item{2, 3} {
		if c, ok := l.Border[NewItemset(it).Key()]; !ok || c != 0 {
			t.Errorf("item %d: border count %d present=%v, want 0 present", it, c, ok)
		}
	}
}

func TestAprioriRejectsBadSupport(t *testing.T) {
	for _, k := range []float64{0, 1, -0.5, 2} {
		if _, err := Apriori(SliceSource(nil), nil, k); err == nil {
			t.Errorf("Apriori accepted κ = %v", k)
		}
	}
}

func TestLatticeSupport(t *testing.T) {
	txs := []Transaction{
		{TID: 0, Items: NewItemset(1, 2)},
		{TID: 1, Items: NewItemset(1)},
	}
	l, err := Apriori(SliceSource(txs), []Item{1, 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := l.Support(NewItemset(1)); !ok || s != 1.0 {
		t.Fatalf("Support({1}) = %v, %v", s, ok)
	}
	if s, ok := l.Support(NewItemset(1, 2)); !ok || s != 0.5 {
		t.Fatalf("Support({1,2}) = %v, %v", s, ok)
	}
	if _, ok := l.Support(NewItemset(9)); ok {
		t.Fatal("Support of untracked itemset reported ok")
	}
}

func TestLatticeClone(t *testing.T) {
	l := NewLattice(0.1)
	l.N = 5
	l.Frequent[NewItemset(1).Key()] = 3
	l.Border[NewItemset(2).Key()] = 0
	c := l.Clone()
	c.Frequent[NewItemset(1).Key()] = 99
	c.N = 7
	if l.Frequent[NewItemset(1).Key()] != 3 || l.N != 5 {
		t.Fatal("Clone is not independent")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	l := NewLattice(0.5)
	l.N = 4
	l.Frequent[NewItemset(1).Key()] = 1 // below minCount 2
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted under-supported frequent itemset")
	}

	l = NewLattice(0.5)
	l.N = 4
	l.Border[NewItemset(1).Key()] = 3 // above threshold
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted over-supported border itemset")
	}

	l = NewLattice(0.5)
	l.N = 4
	l.Frequent[NewItemset(1, 2).Key()] = 2 // subsets missing
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted frequent itemset with missing subsets")
	}
}

func TestMinCount(t *testing.T) {
	tests := []struct {
		n    int
		k    float64
		want int
	}{
		{100, 0.01, 1},
		{100, 0.015, 2},
		{1000, 0.01, 10},
		{0, 0.5, 1},
		{10, 0.001, 1}, // never below 1
	}
	for _, tc := range tests {
		if got := MinCount(tc.n, tc.k); got != tc.want {
			t.Errorf("MinCount(%d, %v) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}
