package itemset

import "github.com/demon-mining/demon/internal/par"

// TxCounter is a candidate-counting structure: one pass of CountTx calls over
// a set of transactions, then Counts. Both PrefixTree and HashTree implement
// it; the parallel ingestion layer is generic over the two so PT-Scan and the
// footnote-7 hash tree share one sharding path.
type TxCounter interface {
	// CountTx increments the count of every candidate contained in tx.
	CountTx(tx Transaction)
	// Counts returns the support count of every candidate, keyed by itemset
	// key.
	Counts() map[Key]int
}

// MergeCounts adds src into dst. Support counts are additive over disjoint
// transaction sets (the Section 3.1.1 additivity property), so merging
// per-shard counts in any order yields exactly the serial count.
func MergeCounts(dst, src map[Key]int) {
	for k, c := range src {
		dst[k] += c
	}
}

// ParallelCount counts the candidates over txs, sharding the transactions
// into contiguous ranges across workers; each shard counts with its own
// structure from build and the per-shard count maps are merged additively.
// The result is identical to a serial pass for every worker count. With one
// worker (or few transactions) it degenerates to the serial scan with no
// goroutine spawned.
func ParallelCount(txs []Transaction, workers int, build func() TxCounter) map[Key]int {
	shards := par.Shards(len(txs), workers)
	if shards <= 1 {
		t := build()
		for _, tx := range txs {
			t.CountTx(tx)
		}
		return t.Counts()
	}
	partial := make([]map[Key]int, shards)
	par.Do(len(txs), workers, func(shard, lo, hi int) {
		t := build()
		for _, tx := range txs[lo:hi] {
			t.CountTx(tx)
		}
		partial[shard] = t.Counts()
	})
	total := partial[0]
	for _, p := range partial[1:] {
		MergeCounts(total, p)
	}
	return total
}

// ParallelPrefixCount counts the candidates over txs with per-shard prefix
// trees — the parallel form of the PT-Scan inner loop.
func ParallelPrefixCount(cands []Itemset, txs []Transaction, workers int) map[Key]int {
	return ParallelCount(txs, workers, func() TxCounter { return NewPrefixTree(cands) })
}
