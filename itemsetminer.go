package demon

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/par"
	"github.com/demon-mining/demon/internal/tidlist"
)

// ItemsetMinerConfig configures an ItemsetMiner.
type ItemsetMinerConfig struct {
	// MinSupport is the fractional minimum support κ ∈ (0, 1).
	MinSupport float64
	// Strategy selects the update-phase counting procedure (default PTScan).
	Strategy CountingStrategy
	// Store persists blocks and TID-lists; defaults to an in-memory store.
	Store Store
	// BSS restricts which blocks enter the model (window-independent);
	// defaults to all blocks. Skipped blocks are still ingested so that a
	// later threshold change or a second miner can see them.
	BSS BSS
	// ECUTPlusBudget caps, per block, the number of TID entries spent on
	// materialized 2-itemset lists (the M_i of Section 3.1.1). Zero or
	// negative means unlimited. Ignored unless Strategy is ECUTPlus.
	ECUTPlusBudget int64
	// Workers is the parallel-ingestion knob: it shards detection-phase
	// scans, update-phase counting (blocks and transaction ranges are
	// independent by the additivity property), and TID-list materialization
	// across worker goroutines. Zero or negative selects GOMAXPROCS; 1 keeps
	// ingestion serial; larger values use that many workers. Every parallel
	// path is deterministic: the model, the stored bytes, and the counting
	// observability counters are identical for every worker count.
	Workers int
	// AutoCheckpointEvery checkpoints the model automatically after every
	// N-th block, inside the same atomic transaction as the block itself.
	// Zero or negative disables automatic checkpoints.
	AutoCheckpointEvery int
	// TxnHook, when non-nil, is invoked inside every AddBlock transaction —
	// after the block's writes and any automatic checkpoint, before commit —
	// with the transactional store view and the block's identifier. Writes
	// it performs become durable atomically with the block or not at all;
	// the serving layer persists its ingest-sequence high-water mark through
	// it. A hook error aborts the block like any other transaction failure.
	TxnHook func(store Store, id BlockID) error
}

// MaintenanceReport describes one AddBlock step.
type MaintenanceReport struct {
	// Block is the identifier assigned to the added block.
	Block BlockID
	// Selected reports whether the BSS selected the block; when false the
	// model carried over unchanged.
	Selected bool
	// Detection and Update are the BORDERS phase times.
	Detection time.Duration
	Update    time.Duration
	// Promoted / Demoted are border promotions and frequent demotions.
	Promoted, Demoted int
	// CandidatesCounted is the number of new candidates the update phase
	// counted.
	CandidatesCounted int
	// Ingest is the time spent storing the block and materializing its
	// TID-lists.
	Ingest time.Duration
}

// ItemsetMiner maintains the set of frequent itemsets (and its negative
// border) over the unrestricted window of a systematically evolving
// transactional database, using the BORDERS algorithm with the configured
// counting strategy.
type ItemsetMiner struct {
	// mu makes readers (FrequentItemsets, Lattice, Rules, T, ModelBlocks) safe
	// concurrently with the mutating calls (AddBlock, DeleteOldestBlock,
	// ChangeMinSupport, Checkpoint). Mutators take the write lock; readers
	// share the read lock.
	mu      sync.RWMutex
	cfg     ItemsetMinerConfig
	io      *diskio.TxnStore // cfg.Store wrapped with atomic transactions
	blocks  *itemset.BlockStore
	tids    *tidlist.Store
	mt      *borders.Maintainer
	model   *borders.Model
	snap    blockseq.Snapshot
	totalTx int // all ingested transactions, selected or not (drives TIDs)
	err     error
}

// NewItemsetMiner creates a miner over an empty database. Incomplete
// transactions left in the store by a crash are recovered (rolled back or
// forward) before the miner starts.
func NewItemsetMiner(cfg ItemsetMinerConfig) (*ItemsetMiner, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport >= 1 {
		return nil, fmt.Errorf("demon: minimum support %v outside (0, 1)", cfg.MinSupport)
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.BSS == nil {
		cfg.BSS = AllBlocks()
	}
	if err := recoverStore(cfg.Store); err != nil {
		return nil, err
	}
	m := &ItemsetMiner{
		cfg: cfg,
		io:  diskio.NewTxnStore(cfg.Store),
	}
	m.blocks = itemset.NewBlockStore(m.io)
	m.tids = tidlist.NewStore(m.io)
	m.tids.SetWorkers(cfg.Workers)
	counter, err := newCounter(cfg.Strategy, m.blocks, m.tids, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m.mt = &borders.Maintainer{Store: m.blocks, Counter: counter, MinSupport: cfg.MinSupport, IO: m.io, Workers: cfg.Workers}
	m.model = m.mt.Empty()
	return m, nil
}

// unusable reports the sticky failure: once an AddBlock transaction has
// failed, the in-memory model may have absorbed writes the store rolled
// back, so the miner refuses further work until reopened from its last
// checkpoint (ResumeItemsetMiner).
func (m *ItemsetMiner) unusable() error {
	return fmt.Errorf("demon: miner unusable after failed block (resume from the last checkpoint): %w", m.err)
}

// parallelize wraps a counter in block-sharded parallel counting when the
// resolved worker count exceeds one.
func parallelize(c borders.Counter, workers int) borders.Counter {
	if par.Workers(workers) <= 1 {
		return c
	}
	return borders.ParallelCounter{Inner: c, Workers: workers}
}

// newCounter builds the update-phase counting strategy. The full-scan
// strategies shard each block's transactions across the workers; the
// TID-list strategies shard the selected blocks instead (per-item lists are
// per-block, so blocks are the natural unit there). Either way the counts
// are identical to a serial pass.
func newCounter(s CountingStrategy, bs *itemset.BlockStore, ts *tidlist.Store, workers int) (borders.Counter, error) {
	switch s {
	case PTScan:
		return borders.PTScan{Blocks: bs, Workers: workers}, nil
	case HashTree:
		return borders.HashTreeScan{Blocks: bs, Workers: workers}, nil
	case ECUT:
		return parallelize(borders.ECUT{TIDs: ts}, workers), nil
	case ECUTPlus:
		return parallelize(borders.ECUTPlus{TIDs: ts}, workers), nil
	default:
		return nil, fmt.Errorf("demon: unknown counting strategy %d", int(s))
	}
}

// ingest stores a transaction block and materializes its TID-lists (and,
// under ECUT+, the TID-lists of the current frequent 2-itemsets, ranked by
// overall support per the paper's heuristic).
func ingestTxBlock(blocks *itemset.BlockStore, tids *tidlist.Store, strategy CountingStrategy,
	budget int64, lat *itemset.Lattice, blk *itemset.TxBlock) error {

	if err := blocks.Put(blk); err != nil {
		return err
	}
	if strategy != ECUT && strategy != ECUTPlus {
		return nil
	}
	if err := tids.Materialize(blk); err != nil {
		return err
	}
	if strategy != ECUTPlus {
		return nil
	}
	pairs := frequent2ItemsetsBySupport(lat)
	if len(pairs) == 0 {
		return nil
	}
	if budget <= 0 {
		budget = -1
	}
	_, _, err := tids.MaterializePairs(blk, pairs, budget)
	return err
}

// frequent2ItemsetsBySupport lists the lattice's frequent 2-itemsets in
// decreasing support order.
func frequent2ItemsetsBySupport(l *itemset.Lattice) []itemset.Itemset {
	type scored struct {
		set   itemset.Itemset
		count int
	}
	var all []scored
	for k, c := range l.Frequent {
		x := k.Itemset()
		if len(x) == 2 {
			all = append(all, scored{x, c})
		}
	}
	// Sort by count desc, itemset key asc for determinism.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j-1], all[j]
			if b.count > a.count || (b.count == a.count && b.set.Key() < a.set.Key()) {
				all[j-1], all[j] = b, a
			} else {
				break
			}
		}
	}
	out := make([]itemset.Itemset, len(all))
	for i, s := range all {
		out[i] = s.set
	}
	return out
}

// AddBlock appends the next block of transactions to the database and, when
// the BSS selects it, updates the maintained model. It returns a report of
// what the maintenance step did.
//
// The block's writes — transactions, TID-lists, and the automatic checkpoint
// when one is due — commit as a single atomic transaction: after a crash or
// error the store holds either all of them or none. On error the miner
// becomes unusable (the in-memory model may disagree with the rolled-back
// store); reopen it with ResumeItemsetMiner.
func (m *ItemsetMiner) AddBlock(transactions [][]Item) (*MaintenanceReport, error) {
	return m.AddBlockCtx(context.Background(), transactions)
}

// AddBlockCtx is AddBlock carrying a request context: when ctx belongs to a
// sampled trace, the block's ingest span and the storage transaction commit
// record into that trace (see internal/obs).
func (m *ItemsetMiner) AddBlockCtx(ctx context.Context, transactions [][]Item) (rep *MaintenanceReport, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.unusable()
	}
	span := obs.Default().Timer("miner.itemset.addblock.ns").StartCtx(ctx)
	defer span.End()
	ctx = span.Ctx(ctx)

	snap, id := m.snap.Append()
	blk := itemset.NewTxBlock(id, m.totalTx, transactions)

	m.io.BeginCtx(ctx)
	defer func() {
		if err != nil {
			m.io.Rollback()
			m.err = err
		}
	}()

	rep = &MaintenanceReport{Block: id}
	start := time.Now()
	if err := ingestTxBlock(m.blocks, m.tids, m.cfg.Strategy, m.cfg.ECUTPlusBudget, m.model.Lattice, blk); err != nil {
		return nil, fmt.Errorf("demon: ingesting block %d: %w", id, err)
	}
	rep.Ingest = time.Since(start)

	if m.cfg.BSS.Bit(id) {
		rep.Selected = true
		st, err := m.mt.AddBlock(m.model, blk)
		if err != nil {
			return nil, err
		}
		rep.Detection = st.Detection
		rep.Update = st.Update
		rep.Promoted, rep.Demoted = st.Promoted, st.Demoted
		rep.CandidatesCounted = st.CandidatesCounted
	}

	totalTx := m.totalTx + len(blk.Txs)
	if n := m.cfg.AutoCheckpointEvery; n > 0 && int(id)%n == 0 {
		if err := m.writeCheckpoint(ctx, id, totalTx); err != nil {
			return nil, err
		}
	}
	if h := m.cfg.TxnHook; h != nil {
		if err := h(m.io, id); err != nil {
			return nil, fmt.Errorf("demon: block %d transaction hook: %w", id, err)
		}
	}
	if err := m.io.Commit(); err != nil {
		return nil, err
	}
	m.snap = snap
	m.totalTx = totalTx
	return rep, nil
}

// DeleteOldestBlock removes the oldest selected block from the model (the
// AuM option of Section 3.2.4). The block's data remains in the store.
func (m *ItemsetMiner) DeleteOldestBlock() (*MaintenanceReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.unusable()
	}
	if len(m.model.Blocks) == 0 {
		return nil, fmt.Errorf("demon: model covers no blocks")
	}
	id := m.model.Blocks[0]
	st, err := m.mt.DeleteBlock(m.model, id)
	if err != nil {
		return nil, err
	}
	return &MaintenanceReport{
		Block:             id,
		Selected:          true,
		Detection:         st.Detection,
		Update:            st.Update,
		Promoted:          st.Promoted,
		Demoted:           st.Demoted,
		CandidatesCounted: st.CandidatesCounted,
	}, nil
}

// ChangeMinSupport retargets the model to a new threshold κ′: raising is
// free, lowering triggers the BORDERS update phase.
func (m *ItemsetMiner) ChangeMinSupport(minsup float64) (*MaintenanceReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.unusable()
	}
	st, err := m.mt.ChangeMinSupport(m.model, minsup)
	if err != nil {
		return nil, err
	}
	m.cfg.MinSupport = minsup
	return &MaintenanceReport{
		Selected:          true,
		Detection:         st.Detection,
		Update:            st.Update,
		Promoted:          st.Promoted,
		Demoted:           st.Demoted,
		CandidatesCounted: st.CandidatesCounted,
	}, nil
}

// Lattice returns a snapshot of the maintained model (frequent itemsets and
// negative border with counts). The snapshot is the caller's to mutate; it
// does not track later maintenance.
func (m *ItemsetMiner) Lattice() *Lattice {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.model.Lattice.Clone()
}

// FrequentItemsets lists the frequent itemsets with supports, in
// deterministic order.
func (m *ItemsetMiner) FrequentItemsets() []ItemsetSupport {
	m.mu.RLock()
	defer m.mu.RUnlock()
	l := m.model.Lattice
	sets := l.FrequentSets()
	out := make([]ItemsetSupport, len(sets))
	for i, x := range sets {
		c := l.Frequent[x.Key()]
		out[i] = ItemsetSupport{Itemset: x, Count: c, Support: float64(c) / float64(max(l.N, 1))}
	}
	return out
}

// T returns the identifier of the latest ingested block.
func (m *ItemsetMiner) T() BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.snap.T
}

// ModelBlocks returns the identifiers of the blocks the model currently
// covers (those the BSS selected, minus any deleted).
func (m *ItemsetMiner) ModelBlocks() []BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]BlockID, len(m.model.Blocks))
	copy(out, m.model.Blocks)
	return out
}

// Store exposes the underlying store for I/O accounting.
func (m *ItemsetMiner) Store() Store { return m.cfg.Store }
