package demon

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestItemsetMinerCheckpointRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	store := NewMemStore()
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: ECUT, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][][]Item
	for i := 0; i < 2; i++ {
		rows := randomTxRows(rng, 60, 10, 4)
		blocks = append(blocks, rows)
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh miner over the same store.
	r, err := RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: ECUT, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != m.T() {
		t.Fatalf("restored T = %d, want %d", r.T(), m.T())
	}
	assertLatticeEqual(t, r.Lattice(), m.Lattice())

	// Both continue identically with a third block.
	rows := randomTxRows(rng, 60, 10, 4)
	blocks = append(blocks, rows)
	if _, err := m.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	assertLatticeEqual(t, r.Lattice(), m.Lattice())
	assertLatticeEqual(t, r.Lattice(), aprioriRef(t, blocks, 0.1))
}

func TestItemsetWindowMinerCheckpointRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	store := NewMemStore()
	cfg := ItemsetWindowMinerConfig{MinSupport: 0.1, Strategy: PTScan, WindowSize: 3, Store: store}
	m, err := NewItemsetWindowMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][][]Item
	for i := 0; i < 4; i++ {
		rows := randomTxRows(rng, 50, 10, 4)
		blocks = append(blocks, rows)
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreItemsetWindowMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != m.T() || r.Window() != m.Window() {
		t.Fatalf("restored position T=%d window=%v", r.T(), r.Window())
	}
	assertLatticeEqual(t, r.Current(), m.Current())

	// Both slide identically after restore.
	rows := randomTxRows(rng, 50, 10, 4)
	blocks = append(blocks, rows)
	if _, err := m.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	assertLatticeEqual(t, r.Current(), m.Current())
	assertLatticeEqual(t, r.Current(), aprioriRef(t, blocks[len(blocks)-3:], 0.1))
	if !reflect.DeepEqual(r.FrequentItemsets(), m.FrequentItemsets()) {
		t.Fatal("restored miner diverges in FrequentItemsets")
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	if _, err := RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Store: NewMemStore()}); err == nil {
		t.Error("restored from empty store")
	}
	if _, err := RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1}); err == nil {
		t.Error("restored without a store")
	}
	if _, err := RestoreItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.1, WindowSize: 2, Store: NewMemStore()}); err == nil {
		t.Error("restored window miner from empty store")
	}
	if _, err := RestoreItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.1, WindowSize: 2}); err == nil {
		t.Error("restored window miner without a store")
	}
}

// Satellite: the meta record rejects trailing garbage and unknown versions
// instead of silently misreading a future or damaged layout.
func TestCheckpointMetaRejectsDamage(t *testing.T) {
	store := NewMemStore()
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBlock([][]Item{{1, 2}, {1, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	key := minerCheckpointPrefix + "/meta"
	good, err := store.Get(key)
	if err != nil {
		t.Fatal(err)
	}

	if err := store.Put(key, append(append([]byte(nil), good...), 0xFF)); err != nil {
		t.Fatal(err)
	}
	_, err = RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.2, Store: store})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: got %v, want ErrCorrupt", err)
	}
	if err != nil && !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage error not descriptive: %v", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 0x7E
	if err := store.Put(key, bad); err != nil {
		t.Fatal(err)
	}
	_, err = RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.2, Store: store})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown version: got %v, want ErrCorrupt", err)
	}
	if err != nil && !strings.Contains(err.Error(), "version") {
		t.Fatalf("version error not descriptive: %v", err)
	}

	if err := store.Put(key, good); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.2, Store: store}); err != nil {
		t.Fatalf("restoring the undamaged meta: %v", err)
	}
}

// Satellite: restoring a window checkpoint under a mismatched window size or
// window-relative BSS must fail descriptively, not mis-restore slots.
func TestRestoreWindowMinerConfigMismatch(t *testing.T) {
	feed := func(m *ItemsetWindowMiner) {
		t.Helper()
		for i := 0; i < 4; i++ {
			if _, err := m.AddBlock([][]Item{{1, 2, 3}, {2, 3}, {1, 3}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	store := NewMemStore()
	m, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.2, WindowSize: 3, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	feed(m)
	_, err = RestoreItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.2, WindowSize: 4, Store: store})
	if err == nil || !strings.Contains(err.Error(), "window size") {
		t.Fatalf("window size mismatch: got %v", err)
	}

	rel, err := ParseWindowRelBSS("101")
	if err != nil {
		t.Fatal(err)
	}
	store = NewMemStore()
	if m, err = NewItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.2, WindowRelBSS: rel, Store: store}); err != nil {
		t.Fatal(err)
	}
	feed(m)
	other, err := ParseWindowRelBSS("110")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RestoreItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.2, WindowRelBSS: other, Store: store})
	if err == nil || !strings.Contains(err.Error(), "BSS") {
		t.Fatalf("BSS mismatch: got %v", err)
	}
	// Same window size but plain window-independent selection: still a
	// different model collection, still rejected.
	_, err = RestoreItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.2, WindowSize: 3, Store: store})
	if err == nil || !strings.Contains(err.Error(), "BSS") {
		t.Fatalf("BSS-vs-plain mismatch: got %v", err)
	}
}

func TestClusterMinerCheckpointRestore(t *testing.T) {
	store := NewMemStore()
	cfg := ClusterMinerConfig{K: 2, Store: store, Tree: TreeConfig{Branching: 3, LeafEntries: 4, MaxLeafEntriesTotal: 32}}
	m, err := NewClusterMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		var pts []Point
		for i := 0; i < 20; i++ {
			c := float64((b*20 + i) % 2 * 10)
			pts = append(pts, Point{c + float64(i%5)/10, c - float64(i%3)/10})
		}
		if _, err := m.AddBlock(pts); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreClusterMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != m.T() {
		t.Fatalf("restored T = %d, want %d", r.T(), m.T())
	}
	if r.NumSubClusters() != m.NumSubClusters() {
		t.Fatalf("restored sub-clusters = %d, want %d", r.NumSubClusters(), m.NumSubClusters())
	}
	want, err := m.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Clusters()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored clusters diverge:\n got %v\nwant %v", got, want)
	}

	// A different K or tree parameterization must be rejected.
	bad := cfg
	bad.K = 3
	if _, err := RestoreClusterMiner(bad); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("K mismatch: got %v", err)
	}
	bad = cfg
	bad.Tree.Branching = 4
	if _, err := RestoreClusterMiner(bad); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("tree mismatch: got %v", err)
	}
}
