package demon

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestItemsetMinerCheckpointRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	store := NewMemStore()
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: ECUT, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][][]Item
	for i := 0; i < 2; i++ {
		rows := randomTxRows(rng, 60, 10, 4)
		blocks = append(blocks, rows)
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh miner over the same store.
	r, err := RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Strategy: ECUT, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != m.T() {
		t.Fatalf("restored T = %d, want %d", r.T(), m.T())
	}
	assertLatticeEqual(t, r.Lattice(), m.Lattice())

	// Both continue identically with a third block.
	rows := randomTxRows(rng, 60, 10, 4)
	blocks = append(blocks, rows)
	if _, err := m.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	assertLatticeEqual(t, r.Lattice(), m.Lattice())
	assertLatticeEqual(t, r.Lattice(), aprioriRef(t, blocks, 0.1))
}

func TestItemsetWindowMinerCheckpointRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	store := NewMemStore()
	cfg := ItemsetWindowMinerConfig{MinSupport: 0.1, Strategy: PTScan, WindowSize: 3, Store: store}
	m, err := NewItemsetWindowMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][][]Item
	for i := 0; i < 4; i++ {
		rows := randomTxRows(rng, 50, 10, 4)
		blocks = append(blocks, rows)
		if _, err := m.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreItemsetWindowMiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.T() != m.T() || r.Window() != m.Window() {
		t.Fatalf("restored position T=%d window=%v", r.T(), r.Window())
	}
	assertLatticeEqual(t, r.Current(), m.Current())

	// Both slide identically after restore.
	rows := randomTxRows(rng, 50, 10, 4)
	blocks = append(blocks, rows)
	if _, err := m.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	assertLatticeEqual(t, r.Current(), m.Current())
	assertLatticeEqual(t, r.Current(), aprioriRef(t, blocks[len(blocks)-3:], 0.1))
	if !reflect.DeepEqual(r.FrequentItemsets(), m.FrequentItemsets()) {
		t.Fatal("restored miner diverges in FrequentItemsets")
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	if _, err := RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Store: NewMemStore()}); err == nil {
		t.Error("restored from empty store")
	}
	if _, err := RestoreItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1}); err == nil {
		t.Error("restored without a store")
	}
	if _, err := RestoreItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.1, WindowSize: 2, Store: NewMemStore()}); err == nil {
		t.Error("restored window miner from empty store")
	}
	if _, err := RestoreItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.1, WindowSize: 2}); err == nil {
		t.Error("restored window miner without a store")
	}
}
