package demon

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 5), plus the ablations. These drive the same code paths as
// cmd/demon-bench but under the Go benchmark harness so relative numbers
// can be compared with -bench/-benchmem across machines and changes. Scales
// are kept small; run cmd/demon-bench -scale 1.0 for paper-sized runs.

import (
	"sync"
	"testing"

	"github.com/demon-mining/demon/internal/bench"
	"github.com/demon-mining/demon/internal/birch"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/borders"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/focus"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/pattern"
	"github.com/demon-mining/demon/internal/pointgen"
	"github.com/demon-mining/demon/internal/proxysim"
	"github.com/demon-mining/demon/internal/quest"
)

const benchScale = 0.02

var (
	countEnvOnce sync.Once
	countEnv     *bench.CountEnv
	countEnvErr  error
)

// sharedCountEnv lazily builds one 2M.20L.1I.4pats.4plen environment (scaled)
// shared by the counting benchmarks.
func sharedCountEnv(b *testing.B) *bench.CountEnv {
	b.Helper()
	countEnvOnce.Do(func() {
		countEnv, countEnvErr = bench.NewCountEnv("2M.20L.1I.4pats.4plen", benchScale, 0.01, 1)
	})
	if countEnvErr != nil {
		b.Fatal(countEnvErr)
	}
	return countEnv
}

// BenchmarkFigure2 measures update-phase counting time for a candidate set
// of 30 negative-border itemsets (the typical |S| the paper reports) with
// each strategy — the Figure 2 series.
func BenchmarkFigure2(b *testing.B) {
	env := sharedCountEnv(b)
	sets := env.CandidateSet(30)
	for _, name := range []string{"PT-Scan", "ECUT", "ECUT+"} {
		b.Run(name, func(b *testing.B) {
			counter, err := env.CounterByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := counter.Count(sets, env.BlockIDs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3 measures the ECUT+ pair materialization (whose entry
// volume is the Figure 3 space table) for one block.
func BenchmarkFigure3(b *testing.B) {
	env := sharedCountEnv(b)
	blk, err := env.Blocks.Get(1)
	if err != nil {
		b.Fatal(err)
	}
	var pairs []itemset.Itemset
	for k := range env.Lattice.Frequent {
		if x := k.Itemset(); len(x) == 2 {
			pairs = append(pairs, x)
		}
	}
	itemset.SortItemsets(pairs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.TIDs.MaterializePairs(blk, pairs, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// maintainBench benchmarks one BORDERS maintenance step (Figures 4–7): a
// second block with the given distribution is added to the shared first
// block under each counting strategy.
func maintainBench(b *testing.B, secondSpec string, minsup float64) {
	env, err := bench.NewCountEnv("2M.20L.1I.4pats.4plen", benchScale, minsup, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec2, err := quest.ParseSpec(secondSpec)
	if err != nil {
		b.Fatal(err)
	}
	spec2.Seed = 101
	gen2, err := quest.New(spec2)
	if err != nil {
		b.Fatal(err)
	}
	gen2.SetNextTID(env.NumTx)
	blk2 := gen2.Block(2, bestEffortSize(50_000))
	if err := env.Blocks.Put(blk2); err != nil {
		b.Fatal(err)
	}
	if err := env.TIDs.Materialize(blk2); err != nil {
		b.Fatal(err)
	}
	var pairs []itemset.Itemset
	for k := range env.Lattice.Frequent {
		if x := k.Itemset(); len(x) == 2 {
			pairs = append(pairs, x)
		}
	}
	itemset.SortItemsets(pairs)
	if len(pairs) > 0 {
		if _, _, err := env.TIDs.MaterializePairs(blk2, pairs, -1); err != nil {
			b.Fatal(err)
		}
	}
	base := &borders.Model{Lattice: env.Lattice, Blocks: []blockseq.ID{1}}

	counters := []borders.Counter{
		borders.PTScan{Blocks: env.Blocks},
		borders.ECUT{TIDs: env.TIDs},
		borders.ECUTPlus{TIDs: env.TIDs},
	}
	for _, counter := range counters {
		b.Run(counter.Name(), func(b *testing.B) {
			mt := &borders.Maintainer{Store: env.Blocks, Counter: counter, MinSupport: minsup}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				model := base.Clone()
				b.StartTimer()
				if _, err := mt.AddBlock(model, blk2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func bestEffortSize(n int) int {
	s := int(float64(n) * benchScale)
	if s < 200 {
		s = 200
	}
	return s
}

// BenchmarkFigure4 — second block ∗M.20L.1I.8pats.4plen, κ = 0.008.
func BenchmarkFigure4(b *testing.B) { maintainBench(b, "2M.20L.1I.8pats.4plen", 0.008) }

// BenchmarkFigure5 — second block ∗M.20L.1I.8pats.4plen, κ = 0.009.
func BenchmarkFigure5(b *testing.B) { maintainBench(b, "2M.20L.1I.8pats.4plen", 0.009) }

// BenchmarkFigure6 — second block ∗M.20L.1I.4pats.5plen, κ = 0.008.
func BenchmarkFigure6(b *testing.B) { maintainBench(b, "2M.20L.1I.4pats.5plen", 0.008) }

// BenchmarkFigure7 — second block ∗M.20L.1I.4pats.5plen, κ = 0.009.
func BenchmarkFigure7(b *testing.B) { maintainBench(b, "2M.20L.1I.4pats.5plen", 0.009) }

// BenchmarkFigure8 compares the non-incremental BIRCH baseline against
// BIRCH+ for one block arrival.
func BenchmarkFigure8(b *testing.B) {
	pcfg, err := pointgen.ParseSpec("1M.50c.5d")
	if err != nil {
		b.Fatal(err)
	}
	pcfg.Seed, pcfg.Noise = 1, 0.02
	gen, err := pointgen.New(pcfg)
	if err != nil {
		b.Fatal(err)
	}
	first := gen.Block(1, bestEffortSize(1_000_000))
	p2 := pcfg
	p2.Seed = 8
	gen2, err := pointgen.New(p2)
	if err != nil {
		b.Fatal(err)
	}
	second := gen2.Block(2, bestEffortSize(400_000))
	bcfg := birch.DefaultConfig(pcfg.K)

	b.Run("BIRCH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := birch.Run(bcfg, first.Points, second.Points); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BIRCH+", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			plus, err := birch.NewPlus(bcfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := plus.AddBlock(first.Points); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := plus.AddBlock(second.Points); err != nil {
				b.Fatal(err)
			}
			if _, err := plus.Clusters(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure9 runs pattern detection over the simulated proxy trace at
// 24-hour granularity (the qualitative Figure 9 table's workload).
func BenchmarkFigure9(b *testing.B) {
	trace := proxysim.Generate(proxysim.Config{Seed: 1, RequestsPerHour: 60})
	blocks, _, err := trace.Segment(24)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		differ := focus.ItemsetDiffer{MinSupport: 0.01}
		det, err := pattern.New[*itemset.TxBlock](differ, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if blk.Len() == 0 {
				continue
			}
			if _, err := det.AddBlock(blk.ID, blk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure10 measures the incremental cost of one more block in the
// compact-sequence maintenance after the full 6-hour trace was ingested —
// the right edge of the Figure 10 series.
func BenchmarkFigure10(b *testing.B) {
	trace := proxysim.Generate(proxysim.Config{Seed: 1, RequestsPerHour: 60})
	blocks, _, err := trace.Segment(6)
	if err != nil {
		b.Fatal(err)
	}
	differ := focus.ItemsetDiffer{MinSupport: 0.01}
	det, err := pattern.New[*itemset.TxBlock](differ, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	var last *itemset.TxBlock
	for _, blk := range blocks[:len(blocks)-1] {
		if blk.Len() == 0 {
			continue
		}
		if _, err := det.AddBlock(blk.ID, blk); err != nil {
			b.Fatal(err)
		}
		last = blk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration appends a fresh copy of the final block under a
		// new identifier; state grows slowly but the dominant cost — the
		// deviations against all earlier blocks — is what Figure 10 plots.
		id := last.ID + blockseq.ID(i+10)
		blk := &itemset.TxBlock{ID: id, FirstTID: last.FirstTID, Txs: last.Txs}
		if _, err := det.AddBlock(id, blk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGEMMvsAuM compares the per-arrival cost of GEMM against
// the add+delete variant AuM on a sliding window (Section 3.2.4).
func BenchmarkAblationGEMMvsAuM(b *testing.B) {
	cfg := bench.DefaultGemmVsAuMConfig(benchScale)
	cfg.Steps = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.GemmVsAuM(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationECUTPlusBudget sweeps the pair-materialization budget.
func BenchmarkAblationECUTPlusBudget(b *testing.B) {
	cfg := bench.DefaultBudgetConfig(benchScale)
	cfg.Fractions = []float64{0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.ECUTPlusBudget(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThresholdChange measures raising vs lowering κ.
func BenchmarkAblationThresholdChange(b *testing.B) {
	cfg := bench.DefaultKappaConfig(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.KappaChange(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBSCANInsertVsDelete measures the per-operation cost asymmetry of
// incremental DBSCAN (the Section 3.2.4 motivation for GEMM).
func BenchmarkDBSCANInsertVsDelete(b *testing.B) {
	cfg := bench.DefaultDBSCANCostConfig()
	cfg.Points = 1500
	cfg.Ops = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.DBSCANCost(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelCounting measures block-sharded counting against the
// serial baseline over a multi-block database.
func BenchmarkParallelCounting(b *testing.B) {
	spec, err := quest.ParseSpec("2M.20L.1I.4pats.4plen")
	if err != nil {
		b.Fatal(err)
	}
	spec.Seed = 1
	gen, err := quest.New(spec)
	if err != nil {
		b.Fatal(err)
	}
	store := diskio.NewMemStore()
	blocks := itemset.NewBlockStore(store)
	var ids []blockseq.ID
	var txs []itemset.Transaction
	for i := 1; i <= 8; i++ {
		blk := gen.Block(blockseq.ID(i), bestEffortSize(100_000))
		if err := blocks.Put(blk); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, blk.ID)
		txs = append(txs, blk.Txs...)
	}
	lat, err := itemset.Apriori(itemset.SliceSource(txs), nil, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	sets := lat.BorderSets()
	if len(sets) > 40 {
		sets = sets[:40]
	}
	serial := borders.PTScan{Blocks: blocks}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := serial.Count(sets, ids); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		pc := borders.ParallelCounter{Inner: serial}
		for i := 0; i < b.N; i++ {
			if _, err := pc.Count(sets, ids); err != nil {
				b.Fatal(err)
			}
		}
	})
}
