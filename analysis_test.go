package demon

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestItemsetMinerRules(t *testing.T) {
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Item, 10)
	for i := range rows {
		if i < 8 {
			rows[i] = []Item{1, 2}
		} else {
			rows[i] = []Item{1}
		}
	}
	if _, err := m.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	rules, err := m.Rules(0.7)
	if err != nil {
		t.Fatal(err)
	}
	// {1}⇒{2} has confidence 0.8; {2}⇒{1} has confidence 1.0.
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	if rules[0].Confidence != 1.0 {
		t.Fatalf("best rule = %v", rules[0])
	}
	if _, err := m.Rules(0); err == nil {
		t.Error("accepted minConf 0")
	}
}

func TestWindowMinerRules(t *testing.T) {
	m, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{MinSupport: 0.2, WindowSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Item, 10)
	for i := range rows {
		rows[i] = []Item{3, 4}
	}
	if _, err := m.AddBlock(rows); err != nil {
		t.Fatal(err)
	}
	rules, err := m.Rules(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
}

func TestCompareTransactionBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	mk := func(base Item, n int) [][]Item {
		rows := make([][]Item, n)
		for i := range rows {
			rows[i] = []Item{base, base + 1, base + Item(rng.Intn(3))}
		}
		return rows
	}
	same1, same2 := mk(0, 400), mk(0, 400)
	diff := mk(50, 400)

	cmp, err := CompareTransactionBlocks(same1, same2, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PValue < 0.01 {
		t.Fatalf("same-process p = %v", cmp.PValue)
	}
	cmp, err = CompareTransactionBlocks(same1, diff, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PValue > 1e-6 || cmp.Score <= 0 {
		t.Fatalf("different-process comparison = %+v", cmp)
	}
	if len(cmp.TopDifferences) != 3 {
		t.Fatalf("top differences = %d", len(cmp.TopDifferences))
	}
	d0 := math.Abs(cmp.TopDifferences[0].SupportA - cmp.TopDifferences[0].SupportB)
	d1 := math.Abs(cmp.TopDifferences[1].SupportA - cmp.TopDifferences[1].SupportB)
	if d0 < d1 {
		t.Fatal("top differences not sorted")
	}

	if _, err := CompareTransactionBlocks(nil, same1, 0.05, 0); err == nil {
		t.Error("accepted empty block")
	}
}

func TestClassifierMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	concept := func(flip bool, n int) []LabeledRecord {
		recs := make([]LabeledRecord, n)
		for i := range recs {
			x := rng.NormFloat64()*0.5 + float64(i%2)*4 - 2
			y := 0
			if (x > 0) != flip {
				y = 1
			}
			recs[i] = LabeledRecord{X: []float64{x, rng.NormFloat64()}, Y: y}
		}
		return recs
	}
	m, err := NewClassifierMonitor(ClassifierMonitorConfig{NumClasses: 2, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Two blocks of the original concept, then one with labels flipped
	// (concept drift).
	for i := 0; i < 2; i++ {
		if _, err := m.AddBlock(concept(false, 500)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.AddBlock(concept(true, 500))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimilarTo != 0 {
		t.Fatalf("drifted block similar to %d earlier blocks", rep.SimilarTo)
	}
	want := [][]BlockID{{1, 2}, {3}}
	if got := m.Patterns(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Patterns = %v, want %v", got, want)
	}
	if m.T() != 3 {
		t.Fatalf("T = %d", m.T())
	}
}

func TestClassifierMonitorValidation(t *testing.T) {
	if _, err := NewClassifierMonitor(ClassifierMonitorConfig{NumClasses: 1, Alpha: 0.01}); err == nil {
		t.Error("accepted single class")
	}
	if _, err := NewClassifierMonitor(ClassifierMonitorConfig{NumClasses: 2, Alpha: 0}); err == nil {
		t.Error("accepted α = 0")
	}
	m, err := NewClassifierMonitor(ClassifierMonitorConfig{NumClasses: 2, Alpha: 0.01, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBlock(nil); err == nil {
		t.Error("accepted empty block")
	}
}
