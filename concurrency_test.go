package demon

// Concurrent-reader tests: every public miner and monitor documents that any
// number of readers may run alongside one mutator. Each test hammers the read
// surface from several goroutines while the main goroutine mutates, and is
// meaningful under the race detector (make race-differential runs them with
// -race).

import (
	"math/rand"
	"sync"
	"testing"
)

// hammer runs read concurrently from several goroutines while mutate runs on
// the calling goroutine, then stops the readers.
func hammer(read, mutate func()) {
	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					read()
				}
			}
		}()
	}
	mutate()
	close(stop)
	wg.Wait()
}

// hammerTxs returns numBlocks small random transaction blocks.
func hammerTxs(seed int64, numBlocks, blockSize int) [][][]Item {
	rng := rand.New(rand.NewSource(seed))
	blocks := make([][][]Item, numBlocks)
	for b := range blocks {
		rows := make([][]Item, blockSize)
		for i := range rows {
			n := 1 + rng.Intn(5)
			row := make([]Item, n)
			for j := range row {
				row[j] = Item(rng.Intn(20))
			}
			rows[i] = row
		}
		blocks[b] = rows
	}
	return blocks
}

// hammerPts returns numBlocks small random 2-d point blocks.
func hammerPts(seed int64, numBlocks, blockSize int) [][]Point {
	rng := rand.New(rand.NewSource(seed))
	blocks := make([][]Point, numBlocks)
	for b := range blocks {
		pts := make([]Point, blockSize)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
		}
		blocks[b] = pts
	}
	return blocks
}

func TestConcurrentReadersItemsetMiner(t *testing.T) {
	m, err := NewItemsetMiner(ItemsetMinerConfig{MinSupport: 0.1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	blocks := hammerTxs(1, 4, 80)
	hammer(func() {
		m.Lattice()
		m.FrequentItemsets()
		m.T()
		m.ModelBlocks()
	}, func() {
		for _, rows := range blocks {
			if _, err := m.AddBlock(rows); err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := m.DeleteOldestBlock(); err != nil {
			t.Error(err)
		}
		if _, err := m.ChangeMinSupport(0.05); err != nil {
			t.Error(err)
		}
	})
}

func TestConcurrentReadersItemsetWindowMiner(t *testing.T) {
	m, err := NewItemsetWindowMiner(ItemsetWindowMinerConfig{
		MinSupport: 0.1, WindowSize: 2, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := hammerTxs(2, 4, 80)
	hammer(func() {
		m.Current()
		m.FrequentItemsets()
		m.Window()
		m.T()
		m.DistinctModels()
	}, func() {
		for _, rows := range blocks {
			if _, err := m.AddBlock(rows); err != nil {
				t.Error(err)
				return
			}
		}
	})
}

func TestConcurrentReadersClusterMiner(t *testing.T) {
	m, err := NewClusterMiner(ClusterMinerConfig{K: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	blocks := hammerPts(3, 4, 60)
	probe := blocks[0][:4]
	hammer(func() {
		m.Clusters()
		m.Assign(probe)
		m.T()
		m.NumSubClusters()
	}, func() {
		for _, pts := range blocks {
			if _, err := m.AddBlock(pts); err != nil {
				t.Error(err)
				return
			}
		}
	})
}

func TestConcurrentReadersClusterWindowMiner(t *testing.T) {
	m, err := NewClusterWindowMiner(ClusterWindowMinerConfig{
		K: 2, WindowSize: 2, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := hammerPts(4, 4, 60)
	hammer(func() {
		m.Clusters()
		m.Window()
		m.T()
	}, func() {
		for _, pts := range blocks {
			if err := m.AddBlock(pts); err != nil {
				t.Error(err)
				return
			}
		}
	})
}

func TestConcurrentReadersMonitor(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{MinSupport: 0.1, Alpha: 0.05, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	blocks := hammerTxs(5, 4, 60)
	hammer(func() {
		m.Patterns()
		m.AllSequences()
		m.Similarity(1, 2)
		m.T()
	}, func() {
		for _, rows := range blocks {
			if _, err := m.AddBlock(rows); err != nil {
				t.Error(err)
				return
			}
		}
	})
}

func TestConcurrentReadersClusterMonitor(t *testing.T) {
	m, err := NewClusterMonitor(ClusterMonitorConfig{K: 2, Alpha: 0.05, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	blocks := hammerPts(6, 4, 50)
	hammer(func() {
		m.Patterns()
		m.T()
	}, func() {
		for _, pts := range blocks {
			if _, err := m.AddBlock(pts); err != nil {
				t.Error(err)
				return
			}
		}
	})
}
