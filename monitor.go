package demon

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/demon-mining/demon/internal/birch"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/focus"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/pattern"
)

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// MinSupport is the threshold the per-block frequent-itemset models are
	// mined at for the FOCUS deviation (the paper's Section 5.3 uses 1%).
	MinSupport float64
	// Alpha is the significance level: two blocks are similar when the
	// probability that they come from the same process is at least Alpha.
	Alpha float64
	// Window optionally restricts detection to the most recent Window
	// blocks (0 = unrestricted).
	Window int
	// Bootstrap switches the significance computation from the parametric
	// approximation to bootstrap resampling.
	Bootstrap bool
	// Resamples is the bootstrap resample count (default 100).
	Resamples int
	// Seed drives bootstrap resampling.
	Seed int64
	// Workers shards each FOCUS deviation computation (per-block model
	// mining and region counting) across worker goroutines. Zero or negative
	// selects GOMAXPROCS; 1 keeps the computation serial. Deviations are
	// identical for every worker count.
	Workers int
}

// MonitorReport describes one Monitor.AddBlock step — the per-block cost
// plotted in Figure 10.
type MonitorReport struct {
	// Block is the identifier assigned to the block.
	Block BlockID
	// Deviations is the number of pairwise deviations computed.
	Deviations int
	// Elapsed is the total time of the step.
	Elapsed time.Duration
	// DeviationTime is the share of Elapsed spent computing FOCUS deviations
	// against earlier blocks; together with ExtendTime it makes the Figure 10
	// cost decomposition reproducible from a single run.
	DeviationTime time.Duration
	// ExtendTime is the share of Elapsed spent extending existing compact
	// sequences with the new block.
	ExtendTime time.Duration
	// SimilarTo is how many earlier blocks this block is similar to.
	SimilarTo int
	// Extended is how many existing compact sequences the block joined.
	Extended int
}

// Monitor discovers compact sequences of similar blocks in an evolving
// transactional database: the Section 4 pattern-detection algorithm over the
// FOCUS frequent-itemset deviation.
type Monitor struct {
	// mu makes readers (Patterns, AllSequences, Similarity, T) safe
	// concurrently with AddBlock.
	mu   sync.RWMutex
	det  *pattern.Detector[*itemset.TxBlock]
	snap blockseq.Snapshot
	next int
}

// NewMonitor creates a monitor over an empty database.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.MinSupport <= 0 || cfg.MinSupport >= 1 {
		return nil, fmt.Errorf("demon: minimum support %v outside (0, 1)", cfg.MinSupport)
	}
	mode := focus.Parametric
	if cfg.Bootstrap {
		mode = focus.Bootstrap
	}
	differ := focus.ItemsetDiffer{
		MinSupport: cfg.MinSupport,
		Mode:       mode,
		Resamples:  cfg.Resamples,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
	}
	var opts []pattern.Option[*itemset.TxBlock]
	if cfg.Window > 0 {
		opts = append(opts, pattern.WithWindow[*itemset.TxBlock](cfg.Window))
	}
	det, err := pattern.New[*itemset.TxBlock](differ, cfg.Alpha, opts...)
	if err != nil {
		return nil, err
	}
	return &Monitor{det: det}, nil
}

// AddBlock ingests the next block of transactions and updates the set of
// compact sequences.
func (m *Monitor) AddBlock(transactions [][]Item) (*MonitorReport, error) {
	return m.AddBlockCtx(context.Background(), transactions)
}

// AddBlockCtx is AddBlock carrying a request context: when ctx belongs to a
// sampled trace, the block's deviation-detection span records into it.
func (m *Monitor) AddBlockCtx(ctx context.Context, transactions [][]Item) (*MonitorReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	span := obs.Default().Timer("monitor.addblock.ns").StartCtx(ctx)
	defer span.End()

	snap, id := m.snap.Append()
	blk := itemset.NewTxBlock(id, m.next, transactions)
	start := time.Now()
	st, err := m.det.AddBlock(id, blk)
	if err != nil {
		return nil, err
	}
	m.snap = snap
	m.next += blk.Len()
	return &MonitorReport{
		Block:         id,
		Deviations:    st.Deviations,
		Elapsed:       time.Since(start),
		DeviationTime: st.DeviationTime,
		ExtendTime:    st.ExtendTime,
		SimilarTo:     st.SimilarTo,
		Extended:      st.Extended,
	}, nil
}

// Patterns returns the maximal compact sequences discovered so far, as
// lists of block identifiers.
func (m *Monitor) Patterns() [][]BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.det.Maximal()
}

// AllSequences returns every maintained compact sequence (one per starting
// block), including those subsumed by longer ones.
func (m *Monitor) AllSequences() [][]BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.det.Sequences()
}

// Similarity returns the cached deviation between two previously added
// blocks.
func (m *Monitor) Similarity(a, b BlockID) (score, pValue float64, ok bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	dev, ok := m.det.Similarity(a, b)
	return dev.Score, dev.PValue, ok
}

// CyclicPattern post-processes a compact sequence into its longest cyclic
// subsequence with the given period, e.g. extracting ⟨D1, D3, D5, D7⟩ from
// ⟨D1, D3, D4, D5, D7⟩.
func CyclicPattern(seq []BlockID, period BlockID) []BlockID {
	return pattern.CyclicSubsequence(seq, period)
}

// T returns the identifier of the latest ingested block.
func (m *Monitor) T() BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.snap.T
}

// ClusterMonitor is Monitor over point blocks, using the FOCUS cluster-model
// deviation.
type ClusterMonitor struct {
	// mu makes readers (Patterns, T) safe concurrently with AddBlock.
	mu   sync.RWMutex
	det  *pattern.Detector[*birch.PointBlock]
	snap blockseq.Snapshot
}

// ClusterMonitorConfig configures a ClusterMonitor.
type ClusterMonitorConfig struct {
	// K is the number of clusters mined from each block.
	K int
	// Alpha is the significance level.
	Alpha float64
	// Window optionally restricts detection to the most recent blocks.
	Window int
	// Workers shards each FOCUS deviation computation (the per-block BIRCH
	// runs and region histograms) across worker goroutines. Zero or negative
	// selects GOMAXPROCS; 1 keeps the computation serial. Deviations are
	// identical for every worker count.
	Workers int
}

// NewClusterMonitor creates a monitor over an empty database of point
// blocks.
func NewClusterMonitor(cfg ClusterMonitorConfig) (*ClusterMonitor, error) {
	differ := focus.ClusterDiffer{K: cfg.K, Workers: cfg.Workers}
	var opts []pattern.Option[*birch.PointBlock]
	if cfg.Window > 0 {
		opts = append(opts, pattern.WithWindow[*birch.PointBlock](cfg.Window))
	}
	det, err := pattern.New[*birch.PointBlock](differ, cfg.Alpha, opts...)
	if err != nil {
		return nil, err
	}
	return &ClusterMonitor{det: det}, nil
}

// AddBlock ingests the next block of points.
func (m *ClusterMonitor) AddBlock(points []Point) (*MonitorReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap, id := m.snap.Append()
	blk := &birch.PointBlock{ID: id, Points: points}
	start := time.Now()
	st, err := m.det.AddBlock(id, blk)
	if err != nil {
		return nil, err
	}
	m.snap = snap
	return &MonitorReport{
		Block:         id,
		Deviations:    st.Deviations,
		Elapsed:       time.Since(start),
		DeviationTime: st.DeviationTime,
		ExtendTime:    st.ExtendTime,
		SimilarTo:     st.SimilarTo,
		Extended:      st.Extended,
	}, nil
}

// Patterns returns the maximal compact sequences discovered so far.
func (m *ClusterMonitor) Patterns() [][]BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.det.Maximal()
}

// T returns the identifier of the latest ingested block.
func (m *ClusterMonitor) T() BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.snap.T
}
