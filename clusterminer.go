package demon

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/demon-mining/demon/internal/birch"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/gemm"
	"github.com/demon-mining/demon/internal/obs"
)

// Cluster is one output cluster of the clustering miners.
type Cluster struct {
	// Centroid is the cluster center.
	Centroid Point
	// N is the number of points in the cluster.
	N int
	// Radius is the root-mean-squared distance of the cluster's points to
	// the centroid.
	Radius float64
}

func toClusters(m *birch.Model) []Cluster {
	out := make([]Cluster, len(m.Clusters))
	for i, c := range m.Clusters {
		out[i] = Cluster{Centroid: c.Centroid(), N: c.CF.N, Radius: c.CF.Radius()}
	}
	return out
}

// ClusterMinerConfig configures a ClusterMiner.
type ClusterMinerConfig struct {
	// K is the required number of clusters.
	K int
	// BSS optionally restricts which blocks enter the model; defaults to
	// all blocks.
	BSS BSS
	// Tree overrides the CF-tree parameters; the zero value selects the
	// defaults (branching 8, 16 leaf entries per node, 512 sub-clusters).
	Tree cf.TreeConfig
	// Store optionally persists point blocks and checkpoints. Without one
	// the miner is purely in-memory and cannot checkpoint.
	Store Store
	// Workers shards the phase-2 refinement behind Clusters and Assign
	// across worker goroutines. Zero or negative selects GOMAXPROCS; 1 keeps
	// the computation serial. The clusters are identical for every worker
	// count.
	Workers int
	// AutoCheckpointEvery checkpoints the resident CF-tree automatically
	// after every N-th block, inside the same atomic transaction as the
	// block itself. Requires Store; zero or negative disables automatic
	// checkpoints.
	AutoCheckpointEvery int
	// TxnHook, when non-nil, runs inside every AddBlock transaction before
	// commit (requires Store); see ItemsetMinerConfig.TxnHook.
	TxnHook func(store Store, id BlockID) error
}

func (c ClusterMinerConfig) treeConfig() cf.TreeConfig {
	if c.Tree == (cf.TreeConfig{}) {
		return cf.DefaultTreeConfig()
	}
	return c.Tree
}

// ClusterMiner maintains a cluster model over the unrestricted window of a
// systematically evolving database of points, using BIRCH+: the set of
// sub-clusters stays resident and each new block is scanned exactly once.
type ClusterMiner struct {
	// mu makes readers (Clusters, Assign, T, NumSubClusters) safe
	// concurrently with AddBlock and Checkpoint.
	mu   sync.RWMutex
	cfg  ClusterMinerConfig
	io   *diskio.TxnStore  // cfg.Store wrapped with transactions; nil when in-memory
	pts  *birch.PointStore // over m.io; nil when in-memory
	plus *birch.Plus
	snap blockseq.Snapshot
	bss  BSS
	err  error
}

// NewClusterMiner creates a miner over an empty database. With a configured
// Store, incomplete transactions left by a crash are recovered first.
func NewClusterMiner(cfg ClusterMinerConfig) (*ClusterMiner, error) {
	plus, err := birch.NewPlus(birch.Config{Tree: cfg.treeConfig(), K: cfg.K, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	bss := cfg.BSS
	if bss == nil {
		bss = AllBlocks()
	}
	m := &ClusterMiner{cfg: cfg, plus: plus, bss: bss}
	if cfg.Store != nil {
		if err := recoverStore(cfg.Store); err != nil {
			return nil, err
		}
		m.io = diskio.NewTxnStore(cfg.Store)
		m.pts = birch.NewPointStore(m.io)
	}
	return m, nil
}

// unusable reports the sticky failure; see ItemsetMiner.unusable.
func (m *ClusterMiner) unusable() error {
	return fmt.Errorf("demon: miner unusable after failed block (resume from the last checkpoint): %w", m.err)
}

// AddBlock appends the next block of points; when the BSS selects it, the
// resident sub-cluster set absorbs it (one scan). It returns the response
// time of the scan.
//
// With a configured Store, the point block and the automatic checkpoint
// (when one is due) commit as a single atomic transaction; on error the
// miner becomes unusable and must be reopened with ResumeClusterMiner.
func (m *ClusterMiner) AddBlock(points []Point) (time.Duration, error) {
	return m.AddBlockCtx(context.Background(), points)
}

// AddBlockCtx is AddBlock carrying a request context: when ctx belongs to a
// sampled trace, the block's clustering span and the storage transaction
// commit record into that trace.
func (m *ClusterMiner) AddBlockCtx(ctx context.Context, points []Point) (elapsed time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return 0, m.unusable()
	}
	span := obs.Default().Timer("miner.cluster.addblock.ns").StartCtx(ctx)
	defer span.End()
	ctx = span.Ctx(ctx)

	snap, id := m.snap.Append()

	if m.io == nil {
		m.snap = snap
		if !m.bss.Bit(id) {
			return 0, nil
		}
		start := time.Now()
		if err := m.plus.AddBlock(points); err != nil {
			return 0, fmt.Errorf("demon: clustering block %d: %w", id, err)
		}
		return time.Since(start), nil
	}

	m.io.BeginCtx(ctx)
	defer func() {
		if err != nil {
			m.io.Rollback()
			m.err = err
		}
	}()
	if err := m.pts.Put(&birch.PointBlock{ID: id, Points: points}); err != nil {
		return 0, fmt.Errorf("demon: storing point block %d: %w", id, err)
	}
	if m.bss.Bit(id) {
		start := time.Now()
		if err := m.plus.AddBlock(points); err != nil {
			return 0, fmt.Errorf("demon: clustering block %d: %w", id, err)
		}
		elapsed = time.Since(start)
	}
	if n := m.cfg.AutoCheckpointEvery; n > 0 && int(id)%n == 0 {
		if err := m.writeCheckpoint(ctx, id); err != nil {
			return 0, err
		}
	}
	if h := m.cfg.TxnHook; h != nil {
		if err := h(m.io, id); err != nil {
			return 0, fmt.Errorf("demon: block %d transaction hook: %w", id, err)
		}
	}
	if err := m.io.Commit(); err != nil {
		return 0, err
	}
	m.snap = snap
	return elapsed, nil
}

// Clusters runs BIRCH phase 2 on the resident sub-clusters and returns the
// K clusters of all selected data so far.
func (m *ClusterMiner) Clusters() ([]Cluster, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	model, err := m.plus.Clusters()
	if err != nil {
		return nil, err
	}
	return toClusters(model), nil
}

// Assign labels each point with the index of its nearest cluster — the
// optional second scan of Section 3.1.2.
func (m *ClusterMiner) Assign(points []Point) ([]int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	model, err := m.plus.Clusters()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(points))
	for i, p := range points {
		out[i] = model.Assign(p)
	}
	return out, nil
}

// T returns the identifier of the latest ingested block.
func (m *ClusterMiner) T() BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.snap.T
}

// NumSubClusters returns the size of the resident sub-cluster set.
func (m *ClusterMiner) NumSubClusters() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.plus.NumSubClusters()
}

// birchAdapter lets GEMM drive BIRCH+ — each GEMM slot owns an independent
// CF-tree, exactly the "collection of models" of Section 3.2 (BIRCH
// sub-cluster sets cannot be maintained under deletions, which is the
// paper's canonical argument for GEMM).
type birchAdapter struct {
	cfg birch.Config
}

func (a birchAdapter) Empty() *birch.Plus {
	p, err := birch.NewPlus(a.cfg)
	if err != nil {
		// Config is validated at miner construction; a failure here is a
		// programming error.
		panic(fmt.Sprintf("demon: birch adapter: %v", err))
	}
	return p
}

func (a birchAdapter) Add(p *birch.Plus, blk []cf.Point) (*birch.Plus, error) {
	if err := p.AddBlock(blk); err != nil {
		return nil, err
	}
	return p, nil
}

// ClusterWindowMinerConfig configures a ClusterWindowMiner; the field
// semantics mirror ItemsetWindowMinerConfig.
type ClusterWindowMinerConfig struct {
	// K is the required number of clusters.
	K int
	// WindowSize is the number of most recent blocks mined (required unless
	// WindowRelBSS is set).
	WindowSize int
	// BSS optionally restricts the window-independent selection.
	BSS BSS
	// WindowRelBSS optionally gives a window-relative selection.
	WindowRelBSS WindowRelBSS
	// Tree overrides the CF-tree parameters.
	Tree cf.TreeConfig
	// Workers fans AddBlock's per-slot CF-tree updates across worker
	// goroutines and shards the phase-2 refinement behind Clusters. Zero or
	// negative selects GOMAXPROCS; 1 keeps maintenance serial. The models
	// are identical for every worker count.
	Workers int
}

// ClusterWindowMiner maintains a cluster model over the most recent window —
// GEMM instantiated with BIRCH+.
type ClusterWindowMiner struct {
	// mu makes readers (Clusters, Window, T) safe concurrently with
	// AddBlock.
	mu   sync.RWMutex
	g    *gemm.GEMM[[]cf.Point, *birch.Plus]
	snap blockseq.Snapshot
}

// NewClusterWindowMiner creates a window miner over an empty database.
func NewClusterWindowMiner(cfg ClusterWindowMinerConfig) (*ClusterWindowMiner, error) {
	tree := cfg.Tree
	if tree == (cf.TreeConfig{}) {
		tree = cf.DefaultTreeConfig()
	}
	// Per-slot CF-tree updates fan across the GEMM workers, so each slot's
	// phase-2 refinement stays serial to avoid nested parallelism.
	bcfg := birch.Config{Tree: tree, K: cfg.K, Workers: 1}
	if _, err := birch.NewPlus(bcfg); err != nil {
		return nil, err // validate once, so the adapter's Empty cannot fail
	}
	ad := birchAdapter{cfg: bcfg}

	var g *gemm.GEMM[[]cf.Point, *birch.Plus]
	var err error
	switch {
	case cfg.WindowRelBSS.Len() > 0:
		if cfg.WindowSize != 0 && cfg.WindowSize != cfg.WindowRelBSS.Len() {
			return nil, fmt.Errorf("demon: window size %d conflicts with window-relative BSS of length %d",
				cfg.WindowSize, cfg.WindowRelBSS.Len())
		}
		g, err = gemm.NewWindowRelative[[]cf.Point, *birch.Plus](ad, cfg.WindowRelBSS)
	default:
		if cfg.WindowSize < 1 {
			return nil, fmt.Errorf("demon: window size %d < 1", cfg.WindowSize)
		}
		b := cfg.BSS
		if b == nil {
			b = AllBlocks()
		}
		g, err = gemm.NewWindowIndependent[[]cf.Point, *birch.Plus](ad, cfg.WindowSize, b)
	}
	if err != nil {
		return nil, err
	}
	g.SetWorkers(cfg.Workers)
	return &ClusterWindowMiner{g: g}, nil
}

// AddBlock appends the next block of points and updates the collection of
// models.
func (m *ClusterWindowMiner) AddBlock(points []Point) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap, id := m.snap.Append()
	if err := m.g.AddBlock(points, id); err != nil {
		return err
	}
	m.snap = snap
	return nil
}

// Clusters returns the cluster model of the current window with respect to
// the BSS.
func (m *ClusterWindowMiner) Clusters() ([]Cluster, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	model, err := m.g.Current().Clusters()
	if err != nil {
		return nil, err
	}
	return toClusters(model), nil
}

// Window returns the current most recent window.
func (m *ClusterWindowMiner) Window() Window {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.g.Window()
}

// T returns the identifier of the latest ingested block.
func (m *ClusterWindowMiner) T() BlockID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.snap.T
}
