// Command demon-cluster maintains a cluster model over a systematically
// evolving database of points with BIRCH+, feeding block files in order.
//
// Usage:
//
//	demon-cluster -k 5 data/block-*.txt
//	demon-cluster -k 5 -window 3 data/block-*.txt
//
// With -store DIR the unrestricted miner keeps its point blocks and CF-tree
// checkpoints in a crash-safe on-disk store; -checkpoint-every N checkpoints
// every N blocks atomically with the block, -resume restores the last
// checkpoint and skips the block files already ingested, and -scrub verifies
// every record's checksum first (usable alone, without block files). The
// window miner (-window > 0) is in-memory only and rejects these flags.
//
// SIGTERM/SIGINT interrupt the run cleanly: the in-flight block finishes its
// atomic store transaction, a checkpoint is taken (with -store), and the
// next -resume continues exactly where the signal landed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/obs/log"
	"github.com/demon-mining/demon/internal/textio"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	k := flag.Int("k", 4, "number of clusters K")
	window := flag.Int("window", 0, "most recent window size w (0 = unrestricted window)")
	workers := flag.Int("workers", 1, "parallel maintenance worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	metricsOut := flag.String("metrics-out", "", "write the metrics-registry snapshot (JSON) to this file on exit")
	pprofAddr := flag.String("pprof-addr", "", "serve /metricsz and /debug/pprof on this address while running (e.g. localhost:6060)")
	storeDir := flag.String("store", "", "keep state in a crash-safe on-disk store: a directory, or a store URL like kvfile:state.kv?cache=16mb")
	storeBackend := flag.String("store-backend", "", "backend of a bare-directory -store: file (default) or kvfile")
	resume := flag.Bool("resume", false, "restore the last checkpoint from -store and skip already-ingested block files")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint automatically every N blocks (requires -store)")
	scrub := flag.Bool("scrub", false, "verify every record checksum in -store before mining, quarantining corrupt ones")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	logCLI := log.RegisterFlags(flag.CommandLine)
	flag.Parse()

	version.PrintAndExitIf(*showVersion, "demon-cluster", os.Exit, os.Stdout)

	if flag.NArg() == 0 && !(*scrub && *storeDir != "") {
		fmt.Fprintln(os.Stderr, "demon-cluster: no block files given")
		os.Exit(2)
	}
	if *metricsOut != "" || *pprofAddr != "" {
		obs.Enable()
	}
	if _, err := logCLI.Apply(obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "demon-cluster:", err)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		if err := obs.Serve(*pprofAddr, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "demon-cluster:", err)
			os.Exit(1)
		}
	}
	// On SIGTERM/SIGINT the in-flight block finishes its atomic store
	// transaction, a checkpoint is taken, and the run exits cleanly so that
	// -resume picks up exactly where the signal landed.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, *k, *window, *workers, *storeDir, *storeBackend, *resume, *ckptEvery, *scrub, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "demon-cluster:", err)
		os.Exit(1)
	}
	if *metricsOut != "" {
		if err := obs.Dump(*metricsOut, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "demon-cluster:", err)
			os.Exit(1)
		}
	}
}

func run(ctx context.Context, k, window, workers int, storeDir, storeBackend string, resume bool, ckptEvery int, scrub bool, files []string) error {
	var addBlock func(pts []demon.Point) error
	var clusters func() ([]demon.Cluster, error)
	var checkpoint func() error
	var ingested func() demon.BlockID

	if window > 0 {
		if storeDir != "" || storeBackend != "" || resume || ckptEvery > 0 || scrub {
			return fmt.Errorf("the window cluster miner is in-memory only; -store/-resume/-checkpoint-every/-scrub require the unrestricted window")
		}
		m, err := demon.NewClusterWindowMiner(demon.ClusterWindowMinerConfig{K: k, WindowSize: window, Workers: workers})
		if err != nil {
			return err
		}
		addBlock = func(pts []demon.Point) error {
			if err := m.AddBlock(pts); err != nil {
				return err
			}
			fmt.Printf("block %d: window %v\n", m.T(), m.Window())
			return nil
		}
		clusters = m.Clusters
		ingested = m.T
	} else {
		if (resume || ckptEvery > 0 || scrub || storeBackend != "") && storeDir == "" {
			return fmt.Errorf("-resume, -checkpoint-every, -scrub and -store-backend require -store")
		}
		cfg := demon.ClusterMinerConfig{K: k, Workers: workers, AutoCheckpointEvery: ckptEvery}
		if storeDir != "" {
			url, err := demon.DirStoreURL(storeBackend, storeDir)
			if err != nil {
				return err
			}
			store, err := demon.OpenStore(url)
			if err != nil {
				return err
			}
			defer demon.CloseStore(store)
			if scrub {
				rep, err := demon.ScrubStore(store, "")
				if err != nil {
					return err
				}
				fmt.Printf("scrub: %d records checked, %d quarantined\n", rep.Checked, len(rep.Quarantined))
				for _, key := range rep.Quarantined {
					fmt.Printf("scrub: quarantined %s\n", key)
				}
			}
			cfg.Store = store
		}
		if len(files) == 0 {
			return nil // -scrub only
		}
		var m *demon.ClusterMiner
		var err error
		if resume {
			m, err = demon.ResumeClusterMiner(cfg)
		} else {
			m, err = demon.NewClusterMiner(cfg)
		}
		if err != nil {
			return err
		}
		addBlock = func(pts []demon.Point) error {
			d, err := m.AddBlock(pts)
			if err != nil {
				return err
			}
			fmt.Printf("block %d: absorbed %d points in %v (%d sub-clusters resident)\n",
				m.T(), len(pts), d.Round(100), m.NumSubClusters())
			return nil
		}
		clusters = m.Clusters
		checkpoint = m.Checkpoint
		ingested = m.T
	}

	// On resume, block files the checkpoint already covers are skipped; the
	// files must be passed in the same order as the original run.
	if done := int(ingested()); done > 0 {
		if done > len(files) {
			done = len(files)
		}
		fmt.Printf("resumed at block %d: skipping %d already-ingested file(s)\n", ingested(), done)
		files = files[done:]
	}

	// The context is checked only between blocks: a signal mid-block lets
	// the block's atomic store transaction finish first.
	interrupted := false
	for _, path := range files {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		pts, err := textio.ReadPointsFile(path)
		if err != nil {
			return err
		}
		if err := addBlock(pts); err != nil {
			return err
		}
	}

	if checkpoint != nil && storeDir != "" {
		if err := checkpoint(); err != nil {
			return err
		}
		fmt.Printf("checkpointed at block %d\n", ingested())
	}
	if interrupted {
		if storeDir != "" {
			fmt.Printf("interrupted after block %d; rerun with -resume to continue\n", ingested())
		} else {
			fmt.Printf("interrupted after block %d (no -store: progress not saved)\n", ingested())
		}
		return nil
	}

	cs, err := clusters()
	if err != nil {
		return err
	}
	fmt.Printf("\n%d clusters:\n", len(cs))
	for i, c := range cs {
		fmt.Printf("  #%d: n=%d radius=%.3f centroid=%.3v\n", i, c.N, c.Radius, c.Centroid)
	}
	return nil
}
