// Command demon-cluster maintains a cluster model over a systematically
// evolving database of points with BIRCH+, feeding block files in order.
//
// Usage:
//
//	demon-cluster -k 5 data/block-*.txt
//	demon-cluster -k 5 -window 3 data/block-*.txt
package main

import (
	"flag"
	"fmt"
	"os"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/textio"
)

func main() {
	k := flag.Int("k", 4, "number of clusters K")
	window := flag.Int("window", 0, "most recent window size w (0 = unrestricted window)")
	metricsOut := flag.String("metrics-out", "", "write the metrics-registry snapshot (JSON) to this file on exit")
	pprofAddr := flag.String("pprof-addr", "", "serve /metricsz and /debug/pprof on this address while running (e.g. localhost:6060)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "demon-cluster: no block files given")
		os.Exit(2)
	}
	if *metricsOut != "" || *pprofAddr != "" {
		obs.Enable()
	}
	if *pprofAddr != "" {
		if err := obs.Serve(*pprofAddr, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "demon-cluster:", err)
			os.Exit(1)
		}
	}
	if err := run(*k, *window, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "demon-cluster:", err)
		os.Exit(1)
	}
	if *metricsOut != "" {
		if err := obs.Dump(*metricsOut, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "demon-cluster:", err)
			os.Exit(1)
		}
	}
}

func run(k, window int, files []string) error {
	var addBlock func(pts []demon.Point) error
	var clusters func() ([]demon.Cluster, error)

	if window > 0 {
		m, err := demon.NewClusterWindowMiner(demon.ClusterWindowMinerConfig{K: k, WindowSize: window})
		if err != nil {
			return err
		}
		addBlock = func(pts []demon.Point) error {
			if err := m.AddBlock(pts); err != nil {
				return err
			}
			fmt.Printf("block %d: window %v\n", m.T(), m.Window())
			return nil
		}
		clusters = m.Clusters
	} else {
		m, err := demon.NewClusterMiner(demon.ClusterMinerConfig{K: k})
		if err != nil {
			return err
		}
		addBlock = func(pts []demon.Point) error {
			d, err := m.AddBlock(pts)
			if err != nil {
				return err
			}
			fmt.Printf("block %d: absorbed %d points in %v (%d sub-clusters resident)\n",
				m.T(), len(pts), d.Round(100), m.NumSubClusters())
			return nil
		}
		clusters = m.Clusters
	}

	for _, path := range files {
		pts, err := textio.ReadPointsFile(path)
		if err != nil {
			return err
		}
		if err := addBlock(pts); err != nil {
			return err
		}
	}

	cs, err := clusters()
	if err != nil {
		return err
	}
	fmt.Printf("\n%d clusters:\n", len(cs))
	for i, c := range cs {
		fmt.Printf("  #%d: n=%d radius=%.3f centroid=%.3v\n", i, c.N, c.Radius, c.Centroid)
	}
	return nil
}
