package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writePointBlocks(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	var paths []string
	for b := 0; b < 2; b++ {
		p := filepath.Join(dir, fmt.Sprintf("block-%d.txt", b))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			cx := float64((i % 2) * 20)
			fmt.Fprintf(f, "%f %f\n", cx+rng.NormFloat64(), rng.NormFloat64())
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

func TestRunUnrestricted(t *testing.T) {
	paths := writePointBlocks(t)
	if err := run(2, 0, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunWindowed(t *testing.T) {
	paths := writePointBlocks(t)
	if err := run(2, 1, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	paths := writePointBlocks(t)
	if err := run(0, 0, paths); err == nil {
		t.Error("accepted k = 0")
	}
	if err := run(2, 0, []string{"/nonexistent"}); err == nil {
		t.Error("accepted missing file")
	}
}
