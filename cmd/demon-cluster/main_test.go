package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writePointBlocks(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	var paths []string
	for b := 0; b < 2; b++ {
		p := filepath.Join(dir, fmt.Sprintf("block-%d.txt", b))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			cx := float64((i % 2) * 20)
			fmt.Fprintf(f, "%f %f\n", cx+rng.NormFloat64(), rng.NormFloat64())
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

func TestRunUnrestricted(t *testing.T) {
	paths := writePointBlocks(t)
	if err := run(context.Background(), 2, 0, 2, "", "", false, 0, false, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunWindowed(t *testing.T) {
	paths := writePointBlocks(t)
	if err := run(context.Background(), 2, 1, 2, "", "", false, 0, false, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	paths := writePointBlocks(t)
	if err := run(context.Background(), 0, 0, 2, "", "", false, 0, false, paths); err == nil {
		t.Error("accepted k = 0")
	}
	if err := run(context.Background(), 2, 0, 2, "", "", false, 0, false, []string{"/nonexistent"}); err == nil {
		t.Error("accepted missing file")
	}
}

func TestRunDurableStoreResume(t *testing.T) {
	paths := writePointBlocks(t)
	dir := t.TempDir()

	if err := run(context.Background(), 2, 0, 2, dir, "", false, 1, false, paths[:1]); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 2, 0, 2, dir, "", true, 1, false, paths); err != nil {
		t.Fatal(err)
	}
	// Scrub-only invocation.
	if err := run(context.Background(), 2, 0, 2, dir, "", false, 0, true, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunKVFileBackendResume(t *testing.T) {
	paths := writePointBlocks(t)
	dir := t.TempDir()

	if err := run(context.Background(), 2, 0, 2, dir, "kvfile", false, 1, false, paths[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "store.kv")); err != nil {
		t.Fatalf("kvfile backend left no store.kv: %v", err)
	}
	if err := run(context.Background(), 2, 0, 2, dir, "kvfile", true, 1, false, paths); err != nil {
		t.Fatal(err)
	}
	// A full store URL is passed through, -store-backend not required.
	if err := run(context.Background(), 2, 0, 2, "kvfile:"+dir+"/store.kv?cache=64kb", "", false, 0, true, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunDurabilityFlagErrors(t *testing.T) {
	paths := writePointBlocks(t)
	if err := run(context.Background(), 2, 1, 2, t.TempDir(), "", false, 0, false, paths); err == nil {
		t.Error("window miner accepted -store")
	}
	if err := run(context.Background(), 2, 0, 2, "", "", true, 0, false, paths); err == nil {
		t.Error("accepted -resume without -store")
	}
	if err := run(context.Background(), 2, 0, 2, "", "kvfile", false, 0, false, paths); err == nil {
		t.Error("accepted -store-backend without -store")
	}
	if err := run(context.Background(), 2, 0, 2, t.TempDir(), "bogus", false, 0, false, paths); err == nil {
		t.Error("accepted an unknown -store-backend")
	}
}

func TestRunInterruptCheckpointsAndResumes(t *testing.T) {
	paths := writePointBlocks(t)
	dir := t.TempDir()

	// A cancelled context (the SIGTERM path) stops intake before the first
	// block but still checkpoints cleanly.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(cancelled, 2, 0, 2, dir, "", false, 0, false, paths); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}

	// The interrupted store resumes and ingests everything the signal
	// prevented.
	if err := run(context.Background(), 2, 0, 2, dir, "", true, 0, false, paths); err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}

	// Without a store the interrupt is still a clean exit.
	if err := run(cancelled, 2, 0, 2, "", "", false, 0, false, paths); err != nil {
		t.Fatalf("interrupted in-memory run: %v", err)
	}
}
