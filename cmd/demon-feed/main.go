// Command demon-feed streams NDJSON blocks from stdin into a demon-serve
// namespace with exactly-once delivery: each input line gets a monotonic
// sequence number (its position in the stream), the server deduplicates
// re-sends and rejects gaps, and the client retries through resets, stalls,
// and restarts with capped jittered backoff and a circuit breaker.
//
// Usage:
//
//	demon-datagen -kind tx -format ndjson -blocks 16 -dir - |
//	    demon-feed -url http://127.0.0.1:8080 -ns retail
//
// On a re-run over the same input the already-ingested prefix is skipped
// (durable blocks) or acknowledged as duplicates — feeding is idempotent.
// The final checkpoint makes the whole stream durable before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/client"
	"github.com/demon-mining/demon/internal/obs/log"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "demon-serve base URL")
		ns        = flag.String("ns", "", "target namespace (required)")
		batch     = flag.Int("batch", 16, "blocks per ingest request")
		timeout   = flag.Duration("timeout", time.Minute, "per-request deadline")
		attempts  = flag.Int("attempts", 8, "attempts per batch before giving up")
		ckptEvery = flag.Int("checkpoint-every", 0, "server checkpoint every N input blocks (0 = only at the end)")
		noSync    = flag.Bool("no-sync", false, "skip the initial status sync (rely on duplicate acks alone)")
		noCkpt    = flag.Bool("no-final-checkpoint", false, "skip the final flush+checkpoint")
		maxLine   = flag.Int("max-line-bytes", 0, "reject stdin lines beyond this many bytes (0 = unlimited)")
		showVer   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	version.PrintAndExitIf(*showVer, "demon-feed", os.Exit, os.Stdout)
	logger := log.Default()
	if *ns == "" {
		logger.Error("demon-feed: -ns is required")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f, err := client.New(client.Config{
		BaseURL:        *url,
		Namespace:      *ns,
		RequestTimeout: *timeout,
		MaxAttempts:    *attempts,
		BatchSize:      *batch,
	})
	if err != nil {
		logger.Error("demon-feed: bad config", "err", err)
		os.Exit(2)
	}
	if !*noSync {
		if err := f.Sync(ctx); err != nil {
			logger.Error("demon-feed: initial sync failed", "url", *url, "ns", *ns, "err", err)
			os.Exit(1)
		}
	}

	dec := blockio.NewLineDecoder(os.Stdin, *maxLine)
	start := time.Now()
	var read int64
	for {
		b, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			logger.Error("demon-feed: reading stdin", "block", read+1, "err", err)
			os.Exit(1)
		}
		read++
		for {
			err := f.Send(ctx, b)
			if err == nil {
				break
			}
			if errors.Is(err, client.ErrBreakerOpen) {
				// The breaker fails fast; the stream has nowhere else to
				// go, so wait out the cooldown and probe again.
				logger.Warn("demon-feed: circuit breaker open; waiting", "ns", *ns)
				select {
				case <-time.After(time.Second):
					continue
				case <-ctx.Done():
					logger.Error("demon-feed: interrupted", "err", ctx.Err())
					os.Exit(1)
				}
			}
			logger.Error("demon-feed: send failed", "block", read, "err", err)
			os.Exit(1)
		}
		if n := *ckptEvery; n > 0 && read%int64(n) == 0 {
			if err := f.Checkpoint(ctx); err != nil {
				logger.Error("demon-feed: periodic checkpoint failed", "block", read, "err", err)
				os.Exit(1)
			}
		}
	}
	if err := f.Flush(ctx); err != nil {
		logger.Error("demon-feed: final flush failed", "err", err)
		os.Exit(1)
	}
	if !*noCkpt {
		if err := f.Checkpoint(ctx); err != nil {
			logger.Error("demon-feed: final checkpoint failed", "err", err)
			os.Exit(1)
		}
	}
	st := f.Stats()
	logger.Info("demon-feed: done",
		"read", read, "sent", st.Sent, "duplicates", st.Duplicates,
		"retries", st.Retries, "resyncs", st.Resyncs, "breaker_opens", st.BreakerOpens,
		"elapsed", time.Since(start).String())
	fmt.Fprintf(os.Stdout, "{\"read\":%d,\"sent\":%d,\"duplicates\":%d,\"retries\":%d,\"resyncs\":%d}\n",
		read, st.Sent, st.Duplicates, st.Retries, st.Resyncs)
}
