// Command demon-serve is the resident mining server: miners and monitors
// stay in memory between blocks, absorbing streamed NDJSON blocks per
// namespace and serving model queries while they do — DEMON's monitoring of
// evolving data as a long-running service instead of a batch CLI.
//
// Usage:
//
//	demon-serve -root state/ -addr :8080
//	demon-serve -root state/ -addr :8080 -queue-depth 128 -drain-timeout 1m
//
// Each namespace is one model/config (frequent itemsets, a sliding window,
// clusters, or a pattern monitor) over its own crash-safe store directory
// under -root. Namespaces are created over the API and resumed automatically
// on restart:
//
//	curl -X POST localhost:8080/v1/namespaces \
//	     -d '{"name":"retail","kind":"itemset","min_support":0.01,"strategy":"ecut"}'
//	demon-datagen -kind tx -format ndjson -dir - |
//	     demon-feed -url http://localhost:8080 -ns retail
//	curl 'localhost:8080/v1/namespaces/retail/itemsets?top=10'
//
// Ingestion is backpressured: when a namespace's bounded queue is full the
// server answers 429 with a jittered Retry-After hint and the count of
// blocks it did accept, and the client resumes the stream from there.
// Sequenced streams (demon-feed's default) get exactly-once semantics:
// duplicates are acknowledged as no-ops, gaps rejected. The server is
// hardened against slow and hostile clients: http.Server timeouts
// (-http-*-timeout), a request body cap (-max-ingest-bytes) and a per-block
// line cap (-max-line-bytes) answering 413, and sticky-failed namespaces
// reopen themselves from their stores with capped backoff.
//
// Requests carrying an X-Demon-Trace-Id header are traced end to end (HTTP
// handler, queue wait, miner AddBlock, transaction commit) and retrievable
// at /tracez?id=...; -trace-sample traces a fraction of the rest. /readyz
// reports per-namespace readiness, /metricsz?format=prometheus the metrics
// in Prometheus exposition format, and -log-level/-log-format control the
// structured stderr log.
//
// On SIGTERM/SIGINT the server stops intake (503), drains every queue —
// each in-flight block finishing its atomic store transaction — checkpoints
// every model, and exits; a restart resumes exactly where the drain left
// off. A hard kill loses nothing either: the per-block transactions recover
// on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/obs/log"
	"github.com/demon-mining/demon/internal/serve"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	defTimeouts := serve.DefaultHTTPTimeouts()
	root := flag.String("root", "demon-serve-state", "directory holding one store per namespace")
	addr := flag.String("addr", "localhost:8080", "listen address")
	queueDepth := flag.Int("queue-depth", serve.DefaultQueueDepth, "default per-namespace ingest queue bound")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown may spend draining queues and checkpointing")
	maxIngestBytes := flag.Int64("max-ingest-bytes", serve.DefaultMaxIngestBytes, "cap one ingest request body (413 beyond; negative = unlimited)")
	maxLineBytes := flag.Int("max-line-bytes", serve.DefaultMaxLineBytes, "cap one NDJSON block line (413 beyond; negative = unlimited)")
	reopenBackoff := flag.Duration("reopen-backoff", serve.DefaultReopenBackoff, "base delay before a sticky-failed namespace reopens from its store (negative = disabled)")
	storeBackend := flag.String("store-backend", "", "storage backend of namespaces whose spec does not pick one: file (default) or kvfile")
	readHeaderTimeout := flag.Duration("http-read-header-timeout", defTimeouts.ReadHeader, "http.Server ReadHeaderTimeout (Slowloris guard)")
	readTimeout := flag.Duration("http-read-timeout", defTimeouts.Read, "http.Server ReadTimeout (whole request, streamed ingest body included)")
	writeTimeout := flag.Duration("http-write-timeout", defTimeouts.Write, "http.Server WriteTimeout (whole response)")
	idleTimeout := flag.Duration("http-idle-timeout", defTimeouts.Idle, "http.Server IdleTimeout (keep-alive connections between requests)")
	metricsOut := flag.String("metrics-out", "", "write the metrics-registry snapshot (JSON) to this file on exit")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	logCLI := log.RegisterFlags(flag.CommandLine)
	flag.Parse()

	version.PrintAndExitIf(*showVersion, "demon-serve", os.Exit, os.Stdout)
	obs.Enable()
	if _, err := logCLI.Apply(obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "demon-serve:", err)
		os.Exit(2)
	}

	cfg := serve.Config{
		Root:                *root,
		QueueDepth:          *queueDepth,
		MaxIngestBytes:      *maxIngestBytes,
		MaxLineBytes:        *maxLineBytes,
		ReopenBackoff:       *reopenBackoff,
		DefaultStoreBackend: *storeBackend,
	}
	timeouts := serve.HTTPTimeouts{
		ReadHeader: *readHeaderTimeout,
		Read:       *readTimeout,
		Write:      *writeTimeout,
		Idle:       *idleTimeout,
	}
	if err := run(cfg, timeouts, *addr, *drainTimeout, *metricsOut); err != nil {
		log.Default().Error("fatal", "err", err.Error())
		fmt.Fprintln(os.Stderr, "demon-serve:", err)
		os.Exit(1)
	}
}

func run(cfg serve.Config, timeouts serve.HTTPTimeouts, addr string, drainTimeout time.Duration, metricsOut string) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	for _, n := range srv.Namespaces() {
		log.Default().Info("resumed namespace", "ns", n.Spec().Name, "kind", string(n.Spec().Kind), "t", int64(n.T()))
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := timeouts.Server(addr, srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Default().Info("listening", "addr", ln.Addr().String(), "root", cfg.Root)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately; recovery handles the rest

	log.Default().Info("draining (new intake rejected)")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	for _, n := range srv.Namespaces() {
		log.Default().Info("namespace checkpointed", "ns", n.Spec().Name, "t", int64(n.T()))
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if metricsOut != "" {
		if err := obs.Dump(metricsOut, obs.Default()); err != nil {
			return err
		}
	}
	return nil
}
