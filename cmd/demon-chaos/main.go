// Command demon-chaos is a fault-injecting TCP proxy for exercising
// demon-serve clients against bad networks. It forwards a local port to an
// upstream while injecting one coherent fault per connection: added latency,
// a bandwidth cap, a mid-stream stall, a TCP reset after N bytes, or a
// graceful close after N bytes (a torn NDJSON write from the server's point
// of view).
//
// Usage:
//
//	demon-chaos -listen 127.0.0.1:8081 -upstream 127.0.0.1:8080 \
//	    -latency 50ms -reset-after 4096
//
// then point demon-feed (or curl) at :8081 instead of :8080.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/demon-mining/demon/internal/chaos"
	"github.com/demon-mining/demon/internal/obs/log"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8081", "address to listen on")
		upstream   = flag.String("upstream", "127.0.0.1:8080", "address to forward to")
		latency    = flag.Duration("latency", 0, "extra latency per forwarded chunk, each direction")
		rate       = flag.Int64("rate", 0, "bandwidth cap in bytes/sec per direction (0 = unlimited)")
		stallAfter = flag.Int64("stall-after", 0, "stop forwarding after N client→upstream bytes (0 = off)")
		stallFor   = flag.Duration("stall-for", 0, "bound the stall; 0 stalls until the connection dies")
		resetAfter = flag.Int64("reset-after", 0, "send the client a TCP RST after N client→upstream bytes (0 = off)")
		closeAfter = flag.Int64("close-after", 0, "close both sides after N client→upstream bytes (0 = off)")
		showVer    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	version.PrintAndExitIf(*showVer, "demon-chaos", os.Exit, os.Stdout)

	logger := log.Default()
	p, err := chaos.New(*listen, *upstream)
	if err != nil {
		logger.Error("demon-chaos: start failed", "err", err)
		os.Exit(1)
	}
	p.Set(chaos.Toxics{
		Latency:    *latency,
		Rate:       *rate,
		StallAfter: *stallAfter,
		StallFor:   *stallFor,
		ResetAfter: *resetAfter,
		CloseAfter: *closeAfter,
	})
	logger.Info("demon-chaos: proxying", "listen", p.Addr(), "upstream", *upstream,
		"toxics", fmt.Sprintf("%+v", p.Toxics()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	start := time.Now()
	_ = p.Close()
	resets, closes, stalls := p.Injected()
	logger.Info("demon-chaos: shut down",
		"accepted", p.Accepted(), "resets", resets, "closes", closes, "stalls", stalls,
		"drain", time.Since(start).String())
}
