package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/demon-mining/demon/internal/blockio"
)

func TestRunTx(t *testing.T) {
	dir := t.TempDir()
	if err := run("tx", "2M.20L.1I.4pats.4plen", "text", 2, 100, 0, 0, 1, dir, os.Stdout); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"block-001.txt", "block-002.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 100 {
			t.Fatalf("%s has %d lines, want 100", name, len(lines))
		}
	}
}

func TestRunPoints(t *testing.T) {
	dir := t.TempDir()
	if err := run("points", "1M.3c.2d", "text", 1, 50, 0, 0, 1, dir, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "block-001.txt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 50 {
		t.Fatalf("%d lines, want 50", len(lines))
	}
	if got := len(strings.Fields(lines[0])); got != 2 {
		t.Fatalf("point has %d coordinates, want 2", got)
	}
}

func TestRunProxy(t *testing.T) {
	dir := t.TempDir()
	if err := run("proxy", "", "text", 0, 0, 24, 20, 1, dir, os.Stdout); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 21 blocks + blocks.tsv.
	if len(entries) != 22 {
		t.Fatalf("%d files, want 22", len(entries))
	}
	meta, err := os.ReadFile(filepath.Join(dir, "blocks.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(meta), "anomalous") {
		t.Fatal("blocks.tsv does not mark the anomalous day")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("nope", "", "text", 0, 0, 0, 0, 1, dir, os.Stdout); err == nil {
		t.Error("accepted unknown kind")
	}
	if err := run("tx", "garbage", "text", 1, 10, 0, 0, 1, dir, os.Stdout); err == nil {
		t.Error("accepted bad tx spec")
	}
	if err := run("points", "garbage", "text", 1, 10, 0, 0, 1, dir, os.Stdout); err == nil {
		t.Error("accepted bad point spec")
	}
	if err := run("proxy", "", "text", 0, 0, 0, 10, 1, dir, os.Stdout); err == nil {
		t.Error("accepted zero granularity")
	}
}

func TestRunNDJSONFile(t *testing.T) {
	dir := t.TempDir()
	if err := run("tx", "2M.20L.1I.4pats.4plen", "ndjson", 3, 40, 0, 0, 1, dir, os.Stdout); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "blocks.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	blocks, err := blockio.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("%d blocks, want 3", len(blocks))
	}
	for i, b := range blocks {
		if b.Kind() != "tx" {
			t.Fatalf("block %d kind %q, want tx", i, b.Kind())
		}
		if len(b.Txs) != 40 {
			t.Fatalf("block %d has %d txs, want 40", i, len(b.Txs))
		}
	}
}

func TestRunNDJSONStdout(t *testing.T) {
	var out strings.Builder
	if err := run("points", "1M.3c.2d", "ndjson", 2, 25, 0, 0, 1, "-", &out); err != nil {
		t.Fatal(err)
	}
	blocks, err := blockio.ReadAll(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("%d blocks, want 2", len(blocks))
	}
	for i, b := range blocks {
		if b.Kind() != "points" {
			t.Fatalf("block %d kind %q, want points", i, b.Kind())
		}
		if len(b.Points) != 25 || len(b.Points[0]) != 2 {
			t.Fatalf("block %d shape %dx%d, want 25x2", i, len(b.Points), len(b.Points[0]))
		}
	}
}

func TestRunNDJSONMatchesText(t *testing.T) {
	// The NDJSON stream must carry exactly the blocks the text format writes:
	// same generator, same seed, same transactions.
	textDir, jsonDir := t.TempDir(), t.TempDir()
	if err := run("tx", "2M.10L.1I.4pats.3plen", "text", 1, 30, 0, 0, 9, textDir, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run("tx", "2M.10L.1I.4pats.3plen", "ndjson", 1, 30, 0, 0, 9, jsonDir, os.Stdout); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(filepath.Join(textDir, "block-001.txt"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(jsonDir, "blocks.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	blocks, err := blockio.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON strings.Builder
	for _, tx := range blocks[0].Txs {
		for i, it := range tx {
			if i > 0 {
				fromJSON.WriteString(" ")
			}
			fmt.Fprint(&fromJSON, it)
		}
		fromJSON.WriteString("\n")
	}
	if fromJSON.String() != string(text) {
		t.Fatal("ndjson blocks diverge from text blocks for the same seed")
	}
}

func TestRunFormatErrors(t *testing.T) {
	if err := run("tx", "2M.10L.1I.4pats.3plen", "xml", 1, 10, 0, 0, 1, t.TempDir(), os.Stdout); err == nil {
		t.Error("accepted unknown format")
	}
	if err := run("tx", "2M.10L.1I.4pats.3plen", "text", 1, 10, 0, 0, 1, "-", os.Stdout); err == nil {
		t.Error("accepted -dir - without ndjson format")
	}
}
