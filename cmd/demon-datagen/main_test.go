package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTx(t *testing.T) {
	dir := t.TempDir()
	if err := run("tx", "2M.20L.1I.4pats.4plen", 2, 100, 0, 0, 1, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"block-001.txt", "block-002.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 100 {
			t.Fatalf("%s has %d lines, want 100", name, len(lines))
		}
	}
}

func TestRunPoints(t *testing.T) {
	dir := t.TempDir()
	if err := run("points", "1M.3c.2d", 1, 50, 0, 0, 1, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "block-001.txt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 50 {
		t.Fatalf("%d lines, want 50", len(lines))
	}
	if got := len(strings.Fields(lines[0])); got != 2 {
		t.Fatalf("point has %d coordinates, want 2", got)
	}
}

func TestRunProxy(t *testing.T) {
	dir := t.TempDir()
	if err := run("proxy", "", 0, 0, 24, 20, 1, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 21 blocks + blocks.tsv.
	if len(entries) != 22 {
		t.Fatalf("%d files, want 22", len(entries))
	}
	meta, err := os.ReadFile(filepath.Join(dir, "blocks.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(meta), "anomalous") {
		t.Fatal("blocks.tsv does not mark the anomalous day")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("nope", "", 0, 0, 0, 0, 1, dir); err == nil {
		t.Error("accepted unknown kind")
	}
	if err := run("tx", "garbage", 1, 10, 0, 0, 1, dir); err == nil {
		t.Error("accepted bad tx spec")
	}
	if err := run("points", "garbage", 1, 10, 0, 0, 1, dir); err == nil {
		t.Error("accepted bad point spec")
	}
	if err := run("proxy", "", 0, 0, 0, 10, 1, dir); err == nil {
		t.Error("accepted zero granularity")
	}
}
