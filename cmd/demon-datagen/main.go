// Command demon-datagen generates the synthetic datasets of the DEMON
// experiments as plain-text block files.
//
// Usage:
//
//	demon-datagen -kind tx -spec 2M.20L.1I.4pats.4plen -blocks 4 -blocksize 50000 -dir data/
//	demon-datagen -kind points -spec 1M.50c.5d -blocks 2 -blocksize 100000 -dir data/
//	demon-datagen -kind proxy -granularity 6 -dir data/
//
// Transaction blocks are written as block-NNN.txt with one transaction per
// line (space-separated item ids). Point blocks are written as block-NNN.txt
// with one point per line (space-separated coordinates). Proxy blocks are
// the simulated DEC trace segmented at the given granularity.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/pointgen"
	"github.com/demon-mining/demon/internal/proxysim"
	"github.com/demon-mining/demon/internal/quest"
)

func main() {
	kind := flag.String("kind", "tx", "dataset kind: tx, points, or proxy")
	spec := flag.String("spec", "2M.20L.1I.4pats.4plen", "dataset spec (quest or pointgen notation)")
	blocks := flag.Int("blocks", 4, "number of blocks to generate (tx/points)")
	blockSize := flag.Int("blocksize", 50000, "records per block (tx/points)")
	granularity := flag.Int("granularity", 6, "block granularity in hours (proxy)")
	rate := flag.Int("rate", 400, "base requests per hour (proxy)")
	seed := flag.Int64("seed", 1, "random seed")
	dir := flag.String("dir", "data", "output directory")
	flag.Parse()

	if err := run(*kind, *spec, *blocks, *blockSize, *granularity, *rate, *seed, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "demon-datagen:", err)
		os.Exit(1)
	}
}

func run(kind, spec string, blocks, blockSize, granularity, rate int, seed int64, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	switch kind {
	case "tx":
		cfg, err := quest.ParseSpec(spec)
		if err != nil {
			return err
		}
		cfg.Seed = seed
		gen, err := quest.New(cfg)
		if err != nil {
			return err
		}
		for i := 1; i <= blocks; i++ {
			blk := gen.Block(blockseq.ID(i), blockSize)
			if err := writeTxBlock(dir, i, blk); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d transaction blocks of %d to %s\n", blocks, blockSize, dir)
	case "points":
		cfg, err := pointgen.ParseSpec(spec)
		if err != nil {
			return err
		}
		cfg.Seed = seed
		cfg.Noise = 0.02
		gen, err := pointgen.New(cfg)
		if err != nil {
			return err
		}
		for i := 1; i <= blocks; i++ {
			blk := gen.Block(blockseq.ID(i), blockSize)
			path := filepath.Join(dir, fmt.Sprintf("block-%03d.txt", i))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			w := bufio.NewWriter(f)
			for _, p := range blk.Points {
				for d, x := range p {
					if d > 0 {
						fmt.Fprint(w, " ")
					}
					fmt.Fprint(w, strconv.FormatFloat(x, 'g', -1, 64))
				}
				fmt.Fprintln(w)
			}
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d point blocks of %d to %s\n", blocks, blockSize, dir)
	case "proxy":
		trace := proxysim.Generate(proxysim.Config{Seed: seed, RequestsPerHour: rate})
		txBlocks, infos, err := trace.Segment(granularity)
		if err != nil {
			return err
		}
		for i, blk := range txBlocks {
			if err := writeTxBlock(dir, i+1, blk); err != nil {
				return err
			}
		}
		meta, err := os.Create(filepath.Join(dir, "blocks.tsv"))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(meta)
		fmt.Fprintln(w, "block\tperiod\tkind")
		for i, info := range infos {
			fmt.Fprintf(w, "%d\t%s\t%s\n", i+1, info.Label(), info.Kind)
		}
		if err := w.Flush(); err != nil {
			meta.Close()
			return err
		}
		if err := meta.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d proxy blocks (%dh granularity) to %s\n", len(txBlocks), granularity, dir)
	default:
		return fmt.Errorf("unknown kind %q (want tx, points, or proxy)", kind)
	}
	return nil
}

func writeTxBlock(dir string, n int, blk *itemset.TxBlock) error {
	path := filepath.Join(dir, fmt.Sprintf("block-%03d.txt", n))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, tx := range blk.Txs {
		for i, it := range tx.Items {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, int(it))
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
