// Command demon-datagen generates the synthetic datasets of the DEMON
// experiments as plain-text block files or as an NDJSON block stream.
//
// Usage:
//
//	demon-datagen -kind tx -spec 2M.20L.1I.4pats.4plen -blocks 4 -blocksize 50000 -dir data/
//	demon-datagen -kind points -spec 1M.50c.5d -blocks 2 -blocksize 100000 -dir data/
//	demon-datagen -kind proxy -granularity 6 -dir data/
//	demon-datagen -kind tx -format ndjson -blocks 4 -dir - | curl -X POST --data-binary @- \
//	     localhost:8080/v1/namespaces/retail/blocks
//
// In the default text format transaction blocks are written as block-NNN.txt
// with one transaction per line (space-separated item ids) and point blocks
// with one point per line (space-separated coordinates). Proxy blocks are
// the simulated DEC trace segmented at the given granularity.
//
// With -format ndjson every block becomes one JSON object per line —
// {"txs":[[...]]} or {"points":[[...]]} — the wire format demon-serve
// ingests. Pass -dir - to stream the blocks to stdout instead of writing
// blocks.ndjson into the output directory.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/demon-mining/demon/internal/blockio"
	"github.com/demon-mining/demon/internal/blockseq"
	"github.com/demon-mining/demon/internal/cf"
	"github.com/demon-mining/demon/internal/itemset"
	"github.com/demon-mining/demon/internal/obs/log"
	"github.com/demon-mining/demon/internal/pointgen"
	"github.com/demon-mining/demon/internal/proxysim"
	"github.com/demon-mining/demon/internal/quest"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	kind := flag.String("kind", "tx", "dataset kind: tx, points, or proxy")
	spec := flag.String("spec", "2M.20L.1I.4pats.4plen", "dataset spec (quest or pointgen notation)")
	blocks := flag.Int("blocks", 4, "number of blocks to generate (tx/points)")
	blockSize := flag.Int("blocksize", 50000, "records per block (tx/points)")
	granularity := flag.Int("granularity", 6, "block granularity in hours (proxy)")
	rate := flag.Int("rate", 400, "base requests per hour (proxy)")
	seed := flag.Int64("seed", 1, "random seed")
	dir := flag.String("dir", "data", "output directory, or - for NDJSON on stdout")
	format := flag.String("format", "text", "output format: text (one file per block) or ndjson (one JSON block per line)")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	logCLI := log.RegisterFlags(flag.CommandLine)
	flag.Parse()

	version.PrintAndExitIf(*showVersion, "demon-datagen", os.Exit, os.Stdout)
	if _, err := logCLI.Apply(nil); err != nil {
		fmt.Fprintln(os.Stderr, "demon-datagen:", err)
		os.Exit(2)
	}

	if err := run(*kind, *spec, *format, *blocks, *blockSize, *granularity, *rate, *seed, *dir, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "demon-datagen:", err)
		os.Exit(1)
	}
}

func run(kind, spec, format string, blocks, blockSize, granularity, rate int, seed int64, dir string, stdout io.Writer) error {
	switch format {
	case "text", "ndjson":
	default:
		return fmt.Errorf("unknown format %q (want text or ndjson)", format)
	}
	if dir == "-" && format != "ndjson" {
		return fmt.Errorf("-dir - (stdout) requires -format ndjson")
	}

	// out collects the generated blocks; the sink depends on format/dir.
	out, status, err := newBlockSink(format, dir, stdout)
	if err != nil {
		return err
	}

	switch kind {
	case "tx":
		cfg, err := quest.ParseSpec(spec)
		if err != nil {
			return err
		}
		cfg.Seed = seed
		gen, err := quest.New(cfg)
		if err != nil {
			return err
		}
		for i := 1; i <= blocks; i++ {
			if err := out.txBlock(i, gen.Block(blockseq.ID(i), blockSize)); err != nil {
				return err
			}
		}
		if err := out.close(); err != nil {
			return err
		}
		fmt.Fprintf(status, "wrote %d transaction blocks of %d to %s\n", blocks, blockSize, dir)
	case "points":
		cfg, err := pointgen.ParseSpec(spec)
		if err != nil {
			return err
		}
		cfg.Seed = seed
		cfg.Noise = 0.02
		gen, err := pointgen.New(cfg)
		if err != nil {
			return err
		}
		for i := 1; i <= blocks; i++ {
			if err := out.pointBlock(i, gen.Block(blockseq.ID(i), blockSize).Points); err != nil {
				return err
			}
		}
		if err := out.close(); err != nil {
			return err
		}
		fmt.Fprintf(status, "wrote %d point blocks of %d to %s\n", blocks, blockSize, dir)
	case "proxy":
		trace := proxysim.Generate(proxysim.Config{Seed: seed, RequestsPerHour: rate})
		txBlocks, infos, err := trace.Segment(granularity)
		if err != nil {
			return err
		}
		for i, blk := range txBlocks {
			if err := out.txBlock(i+1, blk); err != nil {
				return err
			}
		}
		if err := out.close(); err != nil {
			return err
		}
		if dir != "-" {
			if err := writeProxyMeta(dir, infos); err != nil {
				return err
			}
		}
		fmt.Fprintf(status, "wrote %d proxy blocks (%dh granularity) to %s\n", len(txBlocks), granularity, dir)
	default:
		return fmt.Errorf("unknown kind %q (want tx, points, or proxy)", kind)
	}
	return nil
}

// blockSink writes generated blocks in one of the output formats.
type blockSink struct {
	txBlock    func(n int, blk *itemset.TxBlock) error
	pointBlock func(n int, pts []cf.Point) error
	close      func() error
}

// newBlockSink also returns the writer for the human status line: stdout
// normally, stderr when the NDJSON stream itself occupies stdout.
func newBlockSink(format, dir string, stdout io.Writer) (*blockSink, io.Writer, error) {
	if format == "text" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, err
		}
		return &blockSink{
			txBlock:    func(n int, blk *itemset.TxBlock) error { return writeTxBlock(dir, n, blk) },
			pointBlock: func(n int, pts []cf.Point) error { return writePointBlock(dir, n, pts) },
			close:      func() error { return nil },
		}, stdout, nil
	}

	var w *bufio.Writer
	status := stdout
	closeFile := func() error { return nil }
	if dir == "-" {
		w = bufio.NewWriter(stdout)
		status = os.Stderr
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, err
		}
		f, err := os.Create(filepath.Join(dir, "blocks.ndjson"))
		if err != nil {
			return nil, nil, err
		}
		w = bufio.NewWriter(f)
		closeFile = f.Close
	}
	enc := blockio.NewEncoder(w)
	return &blockSink{
		txBlock: func(_ int, blk *itemset.TxBlock) error {
			rows := make([][]itemset.Item, len(blk.Txs))
			for i, tx := range blk.Txs {
				rows[i] = tx.Items
			}
			return enc.Encode(blockio.TxBlock(rows))
		},
		pointBlock: func(_ int, pts []cf.Point) error {
			return enc.Encode(blockio.PointBlock(pts))
		},
		close: func() error {
			if err := w.Flush(); err != nil {
				closeFile()
				return err
			}
			return closeFile()
		},
	}, status, nil
}

func writeTxBlock(dir string, n int, blk *itemset.TxBlock) error {
	path := filepath.Join(dir, fmt.Sprintf("block-%03d.txt", n))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, tx := range blk.Txs {
		for i, it := range tx.Items {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, int(it))
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writePointBlock(dir string, n int, pts []cf.Point) error {
	path := filepath.Join(dir, fmt.Sprintf("block-%03d.txt", n))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, p := range pts {
		for d, x := range p {
			if d > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, strconv.FormatFloat(x, 'g', -1, 64))
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeProxyMeta(dir string, infos []proxysim.BlockInfo) error {
	meta, err := os.Create(filepath.Join(dir, "blocks.tsv"))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(meta)
	fmt.Fprintln(w, "block\tperiod\tkind")
	for i, info := range infos {
		fmt.Fprintf(w, "%d\t%s\t%s\n", i+1, info.Label(), info.Kind)
	}
	if err := w.Flush(); err != nil {
		meta.Close()
		return err
	}
	return meta.Close()
}
