package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/demon-mining/demon/internal/bench"
	"github.com/demon-mining/demon/internal/obs"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run(map[string]bool{"fig3": true}, 0.02, 1, 0, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoSelection(t *testing.T) {
	if err := run(map[string]bool{}, 0.02, 1, 0, "", nil); err == nil {
		t.Fatal("accepted empty selection")
	}
	if err := run(map[string]bool{"bogus": true}, 0.02, 1, 0, "", nil); err == nil {
		t.Fatal("accepted unknown experiment name")
	}
}

// TestArtifactAndMetrics exercises the acceptance path end to end: a run
// covering BORDERS (all three counting strategies), BIRCH+ and the pattern
// detector must produce a metrics snapshot with per-phase timers and
// per-strategy byte counters, and a JSON artifact with per-experiment rows
// and metric deltas.
func TestArtifactAndMetrics(t *testing.T) {
	prev := obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(prev)

	art := bench.NewArtifactBuilder(obs.Default(), 0.02, 1)
	selected := map[string]bool{"fig2": true, "fig4": true, "fig8": true, "fig10": true}
	if err := run(selected, 0.02, 1, 0, "", art); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jsonOut := filepath.Join(dir, "bench.json")
	metricsOut := filepath.Join(dir, "metrics.json")
	if err := writeOutputs(art, jsonOut, metricsOut); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	for _, name := range []string{
		"borders.count.ptscan.bytes", "borders.count.ecut.bytes", "borders.count.ecutplus.bytes",
		"borders.count.ptscan.candidates", "borders.count.ecut.candidates", "borders.count.ecutplus.candidates",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s missing or zero in snapshot: %v", name, snap.Counters)
		}
	}
	for _, name := range []string{
		"borders.detect.ns", "borders.update.ns", "birch.insert.ns", "birch.phase2.ns",
		"pattern.addblock.ns", "pattern.deviation.ns", "focus.deviation.ns",
	} {
		if snap.Timers[name].Count == 0 {
			t.Errorf("timer %s missing from snapshot", name)
		}
	}

	raw, err = os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var artifact struct {
		Build struct {
			Module string `json:"module"`
			Go     string `json:"go"`
		} `json:"build"`
		GoMaxProcs  int     `json:"gomaxprocs"`
		Scale       float64 `json:"scale"`
		Seed        int64   `json:"seed"`
		Experiments []struct {
			Name    string          `json:"name"`
			Rows    json.RawMessage `json:"rows"`
			Metrics *obs.Snapshot   `json:"metrics"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &artifact); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if artifact.Build.Module == "" || artifact.Build.Go == "" || artifact.GoMaxProcs <= 0 {
		t.Errorf("artifact lacks a build identity stamp: %+v", artifact.Build)
	}
	if artifact.Scale != 0.02 || artifact.Seed != 1 {
		t.Errorf("artifact seed/scale = %v/%v, want 1/0.02", artifact.Seed, artifact.Scale)
	}
	if len(artifact.Experiments) != 4 {
		t.Fatalf("artifact has %d experiments, want 4", len(artifact.Experiments))
	}
	byName := map[string]json.RawMessage{}
	for _, e := range artifact.Experiments {
		byName[e.Name] = e.Rows
		if e.Metrics == nil {
			t.Errorf("experiment %s has no metrics delta", e.Name)
		}
	}
	var fig2Rows []bench.Fig2Row
	if err := json.Unmarshal(byName["fig2"], &fig2Rows); err != nil {
		t.Fatalf("fig2 rows: %v", err)
	}
	if len(fig2Rows) == 0 {
		t.Fatal("fig2 artifact has no rows")
	}
	for _, r := range fig2Rows {
		if r.PTScanIO.BytesRead <= 0 || r.ECUTIO.BytesRead <= 0 || r.ECUTPlusIO.BytesRead <= 0 {
			t.Fatalf("fig2 row |S|=%d missing per-strategy I/O deltas: %+v", r.NumSets, r)
		}
		// The §3.1.1 claim: TID-list counting fetches far less data than a
		// full scan of the transaction data.
		if r.ECUTIO.BytesRead >= r.PTScanIO.BytesRead {
			t.Errorf("fig2 |S|=%d: ECUT read %d bytes >= PT-Scan's %d", r.NumSets, r.ECUTIO.BytesRead, r.PTScanIO.BytesRead)
		}
	}
}
