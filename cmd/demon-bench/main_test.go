package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run(map[string]bool{"fig3": true}, 0.02, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoSelection(t *testing.T) {
	if err := run(map[string]bool{}, 0.02, 1); err == nil {
		t.Fatal("accepted empty selection")
	}
	if err := run(map[string]bool{"bogus": true}, 0.02, 1); err == nil {
		t.Fatal("accepted unknown experiment name")
	}
}
