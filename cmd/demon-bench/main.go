// Command demon-bench regenerates the tables and figures of the DEMON
// paper's evaluation (Section 5) plus the repository's ablations.
//
// Usage:
//
//	demon-bench -exp all -scale 0.1
//	demon-bench -exp fig2,fig8 -scale 1.0 -seed 7
//	demon-bench -exp all -json bench.json -metrics-out metrics.json
//
// Experiments: fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
// gemm (GEMM vs AuM), ecutplus (pair-budget sweep), kappa (threshold
// change), fup (FUP vs BORDERS), granularity (automatic block-granularity
// selection), scaling (parallel ingestion vs worker count, with a
// byte-identity check on the final store). Dataset sizes scale with -scale;
// 1.0 reproduces the paper's sizes, the default 0.1 runs on a laptop.
//
// -json writes a machine-readable artifact with every experiment's rows and
// its per-experiment instrumentation delta (per-phase timings, per-strategy
// byte counters); -metrics-out writes the cumulative registry snapshot on
// exit; -pprof-addr serves /metricsz and /debug/pprof while running.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/demon-mining/demon/internal/bench"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/obs/log"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments (fig2..fig10, gemm, ecutplus, kappa) or 'all'")
	scale := flag.Float64("scale", 0.1, "dataset scale factor (1.0 = paper sizes)")
	seed := flag.Int64("seed", 1, "random seed for data generation")
	workers := flag.Int("workers", 0, "override the 'scaling' experiment's swept worker counts with {1, N} (0 = default sweep 1,2,4,8)")
	backends := flag.String("backends", "", "comma-separated storage backends for the 'scaling' experiment (mem, file, kvfile, kvfile+cache; empty = mem only)")
	jsonOut := flag.String("json", "", "write a JSON artifact of all experiment rows and per-experiment metrics to this file")
	metricsOut := flag.String("metrics-out", "", "write the cumulative metrics-registry snapshot (JSON) to this file on exit")
	pprofAddr := flag.String("pprof-addr", "", "serve /metricsz and /debug/pprof on this address while running (e.g. localhost:6060)")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	logCLI := log.RegisterFlags(flag.CommandLine)
	flag.Parse()

	version.PrintAndExitIf(*showVersion, "demon-bench", os.Exit, os.Stdout)
	if _, err := logCLI.Apply(obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "demon-bench:", err)
		os.Exit(2)
	}

	selected := map[string]bool{}
	if *exp == "all" {
		for _, e := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "gemm", "ecutplus", "kappa", "fup", "granularity", "dbscan", "scaling"} {
			selected[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			selected[strings.TrimSpace(e)] = true
		}
	}

	if *jsonOut != "" || *metricsOut != "" || *pprofAddr != "" {
		obs.Enable()
	}
	if *pprofAddr != "" {
		if err := obs.Serve(*pprofAddr, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "demon-bench:", err)
			os.Exit(1)
		}
	}

	var art *bench.ArtifactBuilder
	if *jsonOut != "" {
		art = bench.NewArtifactBuilder(obs.Default(), *scale, *seed)
	}

	if err := run(selected, *scale, *seed, *workers, *backends, art); err != nil {
		fmt.Fprintln(os.Stderr, "demon-bench:", err)
		os.Exit(1)
	}
	if err := writeOutputs(art, *jsonOut, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "demon-bench:", err)
		os.Exit(1)
	}
}

func writeOutputs(art *bench.ArtifactBuilder, jsonOut, metricsOut string) error {
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := art.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		return obs.Dump(metricsOut, obs.Default())
	}
	return nil
}

func run(selected map[string]bool, scale float64, seed int64, workers int, backends string, art *bench.ArtifactBuilder) error {
	out := os.Stdout
	ran := 0

	if selected["fig2"] {
		cfg := bench.DefaultFig2Config(scale)
		cfg.Seed = seed
		rows, err := bench.Figure2(cfg)
		if err != nil {
			return err
		}
		bench.WriteFig2(out, rows)
		fmt.Fprintln(out)
		art.Add("fig2", rows)
		ran++
	}
	if selected["fig3"] {
		cfg := bench.DefaultFig3Config(scale)
		cfg.Seed = seed
		rows, err := bench.Figure3(cfg)
		if err != nil {
			return err
		}
		bench.WriteFig3(out, rows)
		fmt.Fprintln(out)
		art.Add("fig3", rows)
		ran++
	}
	for _, fig := range []int{4, 5, 6, 7} {
		if !selected[fmt.Sprintf("fig%d", fig)] {
			continue
		}
		cfg, err := bench.DefaultMaintainConfig(fig, scale)
		if err != nil {
			return err
		}
		cfg.Seed = seed
		rows, err := bench.Maintain(cfg)
		if err != nil {
			return err
		}
		bench.WriteMaintain(out, rows)
		fmt.Fprintln(out)
		art.Add(fmt.Sprintf("fig%d", fig), rows)
		ran++
	}
	if selected["fig8"] {
		cfg := bench.DefaultFig8Config(scale)
		cfg.Seed = seed
		rows, err := bench.Figure8(cfg)
		if err != nil {
			return err
		}
		bench.WriteFig8(out, rows)
		fmt.Fprintln(out)
		art.Add("fig8", rows)
		ran++
	}
	if selected["fig9"] {
		cfg := bench.DefaultFig9Config()
		cfg.Seed = seed
		res, err := bench.Figure9(cfg)
		if err != nil {
			return err
		}
		bench.WriteFig9(out, res)
		fmt.Fprintln(out)
		art.Add("fig9", res)
		ran++
	}
	if selected["fig10"] {
		cfg := bench.DefaultFig10Config()
		cfg.Seed = seed
		rows, err := bench.Figure10(cfg)
		if err != nil {
			return err
		}
		bench.WriteFig10(out, rows)
		fmt.Fprintln(out)
		art.Add("fig10", rows)
		ran++
	}
	if selected["gemm"] {
		cfg := bench.DefaultGemmVsAuMConfig(scale)
		cfg.Seed = seed
		rows, err := bench.GemmVsAuM(cfg)
		if err != nil {
			return err
		}
		bench.WriteGemmVsAuM(out, rows)
		fmt.Fprintln(out)
		art.Add("gemm", rows)
		ran++
	}
	if selected["ecutplus"] {
		cfg := bench.DefaultBudgetConfig(scale)
		cfg.Seed = seed
		rows, err := bench.ECUTPlusBudget(cfg)
		if err != nil {
			return err
		}
		bench.WriteBudget(out, rows)
		fmt.Fprintln(out)
		art.Add("ecutplus", rows)
		ran++
	}
	if selected["kappa"] {
		cfg := bench.DefaultKappaConfig(scale)
		cfg.Seed = seed
		rows, err := bench.KappaChange(cfg)
		if err != nil {
			return err
		}
		bench.WriteKappa(out, rows)
		fmt.Fprintln(out)
		art.Add("kappa", rows)
		ran++
	}
	if selected["fup"] {
		cfg := bench.DefaultFupConfig(scale)
		cfg.Seed = seed
		rows, err := bench.FupVsBorders(cfg)
		if err != nil {
			return err
		}
		bench.WriteFupVsBorders(out, rows)
		fmt.Fprintln(out)
		art.Add("fup", rows)
		ran++
	}
	if selected["granularity"] {
		cfg := bench.DefaultGranularityConfig()
		cfg.Seed = seed
		rows, err := bench.Granularity(cfg)
		if err != nil {
			return err
		}
		bench.WriteGranularity(out, rows)
		fmt.Fprintln(out)
		art.Add("granularity", rows)
		ran++
	}
	if selected["scaling"] {
		cfg := bench.DefaultScalingConfig(scale)
		cfg.Seed = seed
		if workers > 0 {
			cfg.Workers = []int{1, workers}
		}
		if backends != "" {
			for _, be := range strings.Split(backends, ",") {
				cfg.Backends = append(cfg.Backends, strings.TrimSpace(be))
			}
		}
		rows, err := bench.Scaling(cfg)
		if err != nil {
			return err
		}
		bench.WriteScaling(out, rows)
		fmt.Fprintln(out)
		art.Add("scaling", rows)
		ran++
	}
	if selected["dbscan"] {
		cfg := bench.DefaultDBSCANCostConfig()
		cfg.Seed = seed
		row, err := bench.DBSCANCost(cfg)
		if err != nil {
			return err
		}
		bench.WriteDBSCANCost(out, row)
		fmt.Fprintln(out)
		art.Add("dbscan", row)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment selected; see -exp")
	}
	return nil
}
