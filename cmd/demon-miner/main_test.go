package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func writeBlocks(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	blocks := []string{
		"1 2 3\n1 2\n4 5\n1 2 3\n",
		"1 2\n1 2 3\n6\n1 2\n",
		"7 8\n7 8\n7 8\n9\n",
	}
	var paths []string
	for i, content := range blocks {
		p := filepath.Join(dir, "block-"+string(rune('a'+i))+".txt")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

func TestRunUnrestrictedWindow(t *testing.T) {
	paths := writeBlocks(t)
	for _, strategy := range []string{"ptscan", "hashtree", "ecut", "ecutplus"} {
		if err := run(context.Background(), 0.2, strategy, 0, "", 0, 1, 2, 5, 0, durability{}, paths); err != nil {
			t.Fatalf("strategy %s: %v", strategy, err)
		}
	}
}

func TestRunMostRecentWindow(t *testing.T) {
	paths := writeBlocks(t)
	if err := run(context.Background(), 0.2, "ecut", 2, "", 0, 1, 2, 5, 0.5, durability{}, paths); err != nil {
		t.Fatal(err)
	}
	// Window-relative BSS.
	if err := run(context.Background(), 0.2, "ptscan", 2, "10", 0, 1, 2, 5, 0, durability{}, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunPeriodicBSS(t *testing.T) {
	paths := writeBlocks(t)
	if err := run(context.Background(), 0.2, "ptscan", 0, "", 2, 1, 2, 5, 0.8, durability{}, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	paths := writeBlocks(t)
	if err := run(context.Background(), 0.2, "bogus", 0, "", 0, 1, 2, 5, 0, durability{}, paths); err == nil {
		t.Error("accepted unknown strategy")
	}
	if err := run(context.Background(), 0.2, "ptscan", 0, "101", 0, 1, 2, 5, 0, durability{}, paths); err == nil {
		t.Error("accepted -bss without -window")
	}
	if err := run(context.Background(), 0.2, "ptscan", 3, "10", 0, 1, 2, 5, 0, durability{}, paths); err == nil {
		t.Error("accepted mismatched -bss length")
	}
	if err := run(context.Background(), 0.2, "ptscan", 0, "", 0, 1, 2, 5, 0, durability{}, []string{"/nonexistent/file"}); err == nil {
		t.Error("accepted missing block file")
	}
	if err := run(context.Background(), 2.0, "ptscan", 0, "", 0, 1, 2, 5, 0, durability{}, paths); err == nil {
		t.Error("accepted κ = 2")
	}
}

func TestRunDurableStoreResume(t *testing.T) {
	paths := writeBlocks(t)
	dir := t.TempDir()
	dur := durability{dir: dir, every: 1}

	// First run ingests two files and checkpoints.
	if err := run(context.Background(), 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, dur, paths[:2]); err != nil {
		t.Fatal(err)
	}
	// Resume ingests only the third; passing all paths exercises the skip.
	dur.resume = true
	if err := run(context.Background(), 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, dur, paths); err != nil {
		t.Fatal(err)
	}
	// Scrub-only invocation over the surviving store.
	if err := run(context.Background(), 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, durability{dir: dir, scrub: true}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunKVFileBackendResume(t *testing.T) {
	paths := writeBlocks(t)
	dir := t.TempDir()
	dur := durability{dir: dir, backend: "kvfile", every: 1}

	// Checkpoint two blocks into the single-file backend, then resume the
	// third from it; the kvfile must appear where DirStoreURL places it.
	if err := run(context.Background(), 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, dur, paths[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "store.kv")); err != nil {
		t.Fatalf("kvfile backend left no store.kv: %v", err)
	}
	dur.resume = true
	if err := run(context.Background(), 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, dur, paths); err != nil {
		t.Fatal(err)
	}
	// Scrub works through the kvfile stack too.
	if err := run(context.Background(), 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, durability{dir: dir, backend: "kvfile", scrub: true}, nil); err != nil {
		t.Fatal(err)
	}
	// A full store URL bypasses -store-backend entirely.
	if err := run(context.Background(), 0.2, "ecut", 0, "", 0, 1, 2, 5, 0,
		durability{dir: "kvfile:" + dir + "/store.kv?cache=64kb", resume: true}, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunDurabilityFlagErrors(t *testing.T) {
	paths := writeBlocks(t)
	if err := run(context.Background(), 0.2, "ptscan", 0, "", 0, 1, 2, 5, 0, durability{resume: true}, paths); err == nil {
		t.Error("accepted -resume without -store")
	}
	if err := run(context.Background(), 0.2, "ptscan", 0, "", 0, 1, 2, 5, 0, durability{every: 2}, paths); err == nil {
		t.Error("accepted -checkpoint-every without -store")
	}
	if err := run(context.Background(), 0.2, "ptscan", 0, "", 0, 1, 2, 5, 0, durability{scrub: true}, paths); err == nil {
		t.Error("accepted -scrub without -store")
	}
	if err := run(context.Background(), 0.2, "ptscan", 0, "", 0, 1, 2, 5, 0, durability{backend: "kvfile"}, paths); err == nil {
		t.Error("accepted -store-backend without -store")
	}
	if err := run(context.Background(), 0.2, "ptscan", 0, "", 0, 1, 2, 5, 0, durability{dir: t.TempDir(), backend: "bogus"}, paths); err == nil {
		t.Error("accepted an unknown -store-backend")
	}
}

func TestRunInterruptCheckpointsAndResumes(t *testing.T) {
	paths := writeBlocks(t)
	dir := t.TempDir()
	dur := durability{dir: dir}

	// A cancelled context (the SIGTERM path) stops intake before the first
	// block but still checkpoints cleanly.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(cancelled, 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, dur, paths); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}

	// The interrupted store resumes and ingests everything the signal
	// prevented.
	dur.resume = true
	if err := run(context.Background(), 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, dur, paths); err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}

	// Without a store the interrupt is still a clean exit.
	if err := run(cancelled, 0.2, "ecut", 0, "", 0, 1, 2, 5, 0, durability{}, paths); err != nil {
		t.Fatalf("interrupted in-memory run: %v", err)
	}
}
