package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBlocks(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	blocks := []string{
		"1 2 3\n1 2\n4 5\n1 2 3\n",
		"1 2\n1 2 3\n6\n1 2\n",
		"7 8\n7 8\n7 8\n9\n",
	}
	var paths []string
	for i, content := range blocks {
		p := filepath.Join(dir, "block-"+string(rune('a'+i))+".txt")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

func TestRunUnrestrictedWindow(t *testing.T) {
	paths := writeBlocks(t)
	for _, strategy := range []string{"ptscan", "hashtree", "ecut", "ecutplus"} {
		if err := run(0.2, strategy, 0, "", 0, 1, 5, 0, paths); err != nil {
			t.Fatalf("strategy %s: %v", strategy, err)
		}
	}
}

func TestRunMostRecentWindow(t *testing.T) {
	paths := writeBlocks(t)
	if err := run(0.2, "ecut", 2, "", 0, 1, 5, 0.5, paths); err != nil {
		t.Fatal(err)
	}
	// Window-relative BSS.
	if err := run(0.2, "ptscan", 2, "10", 0, 1, 5, 0, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunPeriodicBSS(t *testing.T) {
	paths := writeBlocks(t)
	if err := run(0.2, "ptscan", 0, "", 2, 1, 5, 0.8, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	paths := writeBlocks(t)
	if err := run(0.2, "bogus", 0, "", 0, 1, 5, 0, paths); err == nil {
		t.Error("accepted unknown strategy")
	}
	if err := run(0.2, "ptscan", 0, "101", 0, 1, 5, 0, paths); err == nil {
		t.Error("accepted -bss without -window")
	}
	if err := run(0.2, "ptscan", 3, "10", 0, 1, 5, 0, paths); err == nil {
		t.Error("accepted mismatched -bss length")
	}
	if err := run(0.2, "ptscan", 0, "", 0, 1, 5, 0, []string{"/nonexistent/file"}); err == nil {
		t.Error("accepted missing block file")
	}
	if err := run(2.0, "ptscan", 0, "", 0, 1, 5, 0, paths); err == nil {
		t.Error("accepted κ = 2")
	}
}
