// Command demon-miner maintains the set of frequent itemsets over a
// systematically evolving transactional database, feeding block files in
// order to the DEMON maintenance algorithms.
//
// Usage:
//
//	demon-miner -minsup 0.01 -strategy ecut data/block-*.txt
//	demon-miner -minsup 0.01 -window 4 -bss 1010 data/block-*.txt
//	demon-miner -minsup 0.01 -every 7 -offset 1 data/block-*.txt
//
// Without -window the unrestricted window option is used; -every/-offset
// give a periodic window-independent BSS ("every 7th block starting at 1").
// With -window w the most recent window option is used; -bss optionally
// gives a window-relative bit string of length w. After each block the tool
// prints a maintenance report, and at the end the frequent itemsets.
//
// With -store DIR state goes to a crash-safe on-disk store (atomic writes,
// checksummed records, retry on transient errors) and a checkpoint is taken
// at the end; -checkpoint-every N additionally checkpoints every N blocks,
// atomically with the block itself. -resume reopens the store, restores the
// last checkpoint, and skips the block files already ingested:
//
//	demon-miner -minsup 0.01 -store state/ -checkpoint-every 10 data/block-*.txt
//	demon-miner -minsup 0.01 -store state/ -resume data/block-*.txt
//	demon-miner -store state/ -scrub
//
// -scrub verifies every record's checksum first, quarantining corrupt ones,
// and may be used alone (no block files) to audit a store.
//
// SIGTERM/SIGINT interrupt the run cleanly: the in-flight block finishes its
// atomic store transaction, a checkpoint is taken (with -store), and the
// next -resume continues exactly where the signal landed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/diskio"
	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/obs/log"
	"github.com/demon-mining/demon/internal/textio"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	minsup := flag.Float64("minsup", 0.01, "minimum support κ in (0,1)")
	strategy := flag.String("strategy", "ptscan", "counting strategy: ptscan, hashtree, ecut, ecutplus")
	window := flag.Int("window", 0, "most recent window size w (0 = unrestricted window)")
	bss := flag.String("bss", "", "window-relative BSS bit string of length w (requires -window)")
	every := flag.Int("every", 0, "periodic window-independent BSS: select every Nth block")
	offset := flag.Int("offset", 1, "offset of the periodic BSS")
	workers := flag.Int("workers", 1, "parallel-ingestion worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	top := flag.Int("top", 20, "how many frequent itemsets to print")
	minconf := flag.Float64("rules", 0, "also print association rules at this minimum confidence (0 = off)")
	metricsOut := flag.String("metrics-out", "", "write the metrics-registry snapshot (JSON) to this file on exit")
	pprofAddr := flag.String("pprof-addr", "", "serve /metricsz and /debug/pprof on this address while running (e.g. localhost:6060)")
	storeDir := flag.String("store", "", "keep state in a crash-safe on-disk store: a directory, or a store URL like kvfile:state.kv?cache=16mb")
	storeBackend := flag.String("store-backend", "", "backend of a bare-directory -store: file (default) or kvfile")
	resume := flag.Bool("resume", false, "restore the last checkpoint from -store and skip already-ingested block files")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint automatically every N blocks (requires -store)")
	scrub := flag.Bool("scrub", false, "verify every record checksum in -store before mining, quarantining corrupt ones")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	logCLI := log.RegisterFlags(flag.CommandLine)
	flag.Parse()

	version.PrintAndExitIf(*showVersion, "demon-miner", os.Exit, os.Stdout)

	dur := durability{dir: *storeDir, backend: *storeBackend, resume: *resume, every: *ckptEvery, scrub: *scrub}
	if flag.NArg() == 0 && !(*scrub && *storeDir != "") {
		fmt.Fprintln(os.Stderr, "demon-miner: no block files given")
		os.Exit(2)
	}
	if *metricsOut != "" || *pprofAddr != "" {
		obs.Enable()
	}
	if _, err := logCLI.Apply(obs.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "demon-miner:", err)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		if err := obs.Serve(*pprofAddr, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "demon-miner:", err)
			os.Exit(1)
		}
	}
	// On SIGTERM/SIGINT the in-flight block finishes its atomic store
	// transaction, a checkpoint is taken, and the run exits cleanly so that
	// -resume picks up exactly where the signal landed.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, *minsup, *strategy, *window, *bss, *every, *offset, *workers, *top, *minconf, dur, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "demon-miner:", err)
		os.Exit(1)
	}
	if *metricsOut != "" {
		if err := obs.Dump(*metricsOut, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "demon-miner:", err)
			os.Exit(1)
		}
	}
}

func parseStrategy(s string) (demon.CountingStrategy, error) {
	switch s {
	case "ptscan":
		return demon.PTScan, nil
	case "hashtree":
		return demon.HashTree, nil
	case "ecut":
		return demon.ECUT, nil
	case "ecutplus":
		return demon.ECUTPlus, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// durability bundles the crash-safety flags.
type durability struct {
	dir     string
	backend string
	resume  bool
	every   int
	scrub   bool
}

// openStore builds the configured store: the durable on-disk stack when
// -store was given (a directory resolved through -store-backend, or a full
// store URL passed through), a plain in-memory store otherwise. With -scrub
// it verifies every record first and prints the report.
func (d durability) openStore() (demon.Store, error) {
	if d.resume && d.dir == "" {
		return nil, fmt.Errorf("-resume requires -store")
	}
	if d.every > 0 && d.dir == "" {
		return nil, fmt.Errorf("-checkpoint-every requires -store")
	}
	if d.scrub && d.dir == "" {
		return nil, fmt.Errorf("-scrub requires -store")
	}
	if d.dir == "" {
		if d.backend != "" {
			return nil, fmt.Errorf("-store-backend requires -store")
		}
		return demon.NewMemStore(), nil
	}
	url, err := demon.DirStoreURL(d.backend, d.dir)
	if err != nil {
		return nil, err
	}
	store, err := demon.OpenStore(url)
	if err != nil {
		return nil, err
	}
	if d.scrub {
		rep, err := demon.ScrubStore(store, "")
		if err != nil {
			return nil, err
		}
		fmt.Printf("scrub: %d records checked, %d quarantined\n", rep.Checked, len(rep.Quarantined))
		for _, k := range rep.Quarantined {
			fmt.Printf("scrub: quarantined %s\n", k)
		}
	}
	return store, nil
}

func run(ctx context.Context, minsup float64, strategyName string, window int, bssStr string, every, offset, workers, top int, minconf float64, dur durability, files []string) error {
	strategy, err := parseStrategy(strategyName)
	if err != nil {
		return err
	}
	var indep demon.BSS
	if every > 0 {
		indep = demon.EveryNth(every, offset)
	}

	// One explicit store for the whole run so its I/O counters show up in
	// the metrics snapshot next to the compute-phase timers.
	store, err := dur.openStore()
	if err != nil {
		return err
	}
	defer demon.CloseStore(store)
	diskio.Observe(obs.Default(), "store", store)
	if len(files) == 0 {
		return nil // -scrub only
	}

	var addBlock func(rows [][]demon.Item) error
	var frequents func() []demon.ItemsetSupport
	var rules func(float64) ([]demon.Rule, error)
	var checkpoint func() error
	var ingested func() demon.BlockID

	if window > 0 {
		cfg := demon.ItemsetWindowMinerConfig{
			MinSupport:          minsup,
			Strategy:            strategy,
			WindowSize:          window,
			BSS:                 indep,
			Store:               store,
			Workers:             workers,
			AutoCheckpointEvery: dur.every,
		}
		if bssStr != "" {
			rel, err := demon.ParseWindowRelBSS(bssStr)
			if err != nil {
				return err
			}
			if rel.Len() != window {
				return fmt.Errorf("-bss length %d != -window %d", rel.Len(), window)
			}
			cfg.WindowRelBSS = rel
			cfg.WindowSize = 0
		}
		var m *demon.ItemsetWindowMiner
		if dur.resume {
			m, err = demon.ResumeItemsetWindowMiner(cfg)
		} else {
			m, err = demon.NewItemsetWindowMiner(cfg)
		}
		if err != nil {
			return err
		}
		addBlock = func(rows [][]demon.Item) error {
			rep, err := m.AddBlock(rows)
			if err != nil {
				return err
			}
			fmt.Printf("block %d: window %v, response %v, |L| = %d\n",
				rep.Block, m.Window(), rep.Response.Round(100), len(m.Current().Frequent))
			return nil
		}
		frequents = m.FrequentItemsets
		rules = m.Rules
		checkpoint = m.Checkpoint
		ingested = m.T
	} else {
		if bssStr != "" {
			return fmt.Errorf("-bss requires -window")
		}
		cfg := demon.ItemsetMinerConfig{
			MinSupport:          minsup,
			Strategy:            strategy,
			BSS:                 indep,
			Store:               store,
			Workers:             workers,
			AutoCheckpointEvery: dur.every,
		}
		var m *demon.ItemsetMiner
		if dur.resume {
			m, err = demon.ResumeItemsetMiner(cfg)
		} else {
			m, err = demon.NewItemsetMiner(cfg)
		}
		if err != nil {
			return err
		}
		addBlock = func(rows [][]demon.Item) error {
			rep, err := m.AddBlock(rows)
			if err != nil {
				return err
			}
			fmt.Printf("block %d: selected=%v detection=%v update=%v promoted=%d demoted=%d candidates=%d |L|=%d\n",
				rep.Block, rep.Selected, rep.Detection.Round(100), rep.Update.Round(100),
				rep.Promoted, rep.Demoted, rep.CandidatesCounted, len(m.Lattice().Frequent))
			return nil
		}
		frequents = m.FrequentItemsets
		rules = m.Rules
		checkpoint = m.Checkpoint
		ingested = m.T
	}

	// On resume, block files the checkpoint already covers are skipped; the
	// files must be passed in the same order as the original run.
	if done := int(ingested()); done > 0 {
		if done > len(files) {
			done = len(files)
		}
		fmt.Printf("resumed at block %d: skipping %d already-ingested file(s)\n", ingested(), done)
		files = files[done:]
	}

	// The context is checked only between blocks: a signal mid-block lets
	// the block's atomic store transaction finish first.
	interrupted := false
	for _, path := range files {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		rows, err := textio.ReadTransactionsFile(path)
		if err != nil {
			return err
		}
		if err := addBlock(rows); err != nil {
			return err
		}
	}

	if dur.dir != "" {
		if err := checkpoint(); err != nil {
			return err
		}
		fmt.Printf("checkpointed at block %d\n", ingested())
	}
	if interrupted {
		if dur.dir != "" {
			fmt.Printf("interrupted after block %d; rerun with -resume to continue\n", ingested())
		} else {
			fmt.Printf("interrupted after block %d (no -store: progress not saved)\n", ingested())
		}
		return nil
	}

	fi := frequents()
	fmt.Printf("\n%d frequent itemsets at κ=%v; top %d by support:\n", len(fi), minsup, top)
	// Selection-sort the top entries by support.
	for i := 0; i < len(fi) && i < top; i++ {
		best := i
		for j := i + 1; j < len(fi); j++ {
			if fi[j].Support > fi[best].Support {
				best = j
			}
		}
		fi[i], fi[best] = fi[best], fi[i]
		fmt.Printf("  %-24s support %.4f (count %d)\n", fi[i].Itemset, fi[i].Support, fi[i].Count)
	}

	if minconf > 0 {
		rs, err := rules(minconf)
		if err != nil {
			return err
		}
		fmt.Printf("\n%d association rules at confidence >= %v:\n", len(rs), minconf)
		for i, r := range rs {
			if i == top {
				fmt.Printf("  ... and %d more\n", len(rs)-top)
				break
			}
			fmt.Printf("  %s\n", r)
		}
	}
	return nil
}
