// Command demon-patterns discovers compact sequences of similar blocks in a
// systematically evolving transactional database — the DEMON pattern
// detection of Section 4, driven by the FOCUS frequent-itemset deviation.
//
// Usage:
//
//	demon-patterns -minsup 0.01 -alpha 0.01 data/block-*.txt
//	demon-patterns -minsup 0.01 -alpha 0.01 -labels data/blocks.tsv data/block-*.txt
//
// Blocks are compared pairwise; two blocks are similar when the probability
// that they come from the same process is at least alpha. The tool prints
// the maximal compact sequences and, with -cycle p, the longest cyclic
// sub-pattern of period p found in any sequence.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	demon "github.com/demon-mining/demon"
	"github.com/demon-mining/demon/internal/obs/log"
	"github.com/demon-mining/demon/internal/textio"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	minsup := flag.Float64("minsup", 0.01, "per-block mining threshold κ")
	alpha := flag.Float64("alpha", 0.01, "similarity significance level")
	window := flag.Int("window", 0, "restrict detection to the most recent blocks (0 = unrestricted)")
	cycle := flag.Int("cycle", 0, "report the longest cyclic sub-pattern of this period")
	labelsPath := flag.String("labels", "", "optional TSV (block<TAB>label...) naming blocks in the output")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	logCLI := log.RegisterFlags(flag.CommandLine)
	flag.Parse()

	version.PrintAndExitIf(*showVersion, "demon-patterns", os.Exit, os.Stdout)
	if _, err := logCLI.Apply(nil); err != nil {
		fmt.Fprintln(os.Stderr, "demon-patterns:", err)
		os.Exit(2)
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "demon-patterns: no block files given")
		os.Exit(2)
	}
	if err := run(*minsup, *alpha, *window, *cycle, *labelsPath, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "demon-patterns:", err)
		os.Exit(1)
	}
}

func loadLabels(path string) (map[demon.BlockID]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	labels := make(map[demon.BlockID]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.SplitN(sc.Text(), "\t", 3)
		if len(fields) < 2 {
			continue
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			continue // header or comment row
		}
		labels[demon.BlockID(id)] = fields[1]
	}
	return labels, sc.Err()
}

func run(minsup, alpha float64, window, cycle int, labelsPath string, files []string) error {
	var labels map[demon.BlockID]string
	if labelsPath != "" {
		var err error
		if labels, err = loadLabels(labelsPath); err != nil {
			return err
		}
	}
	name := func(id demon.BlockID) string {
		if l, ok := labels[id]; ok {
			return fmt.Sprintf("D%d(%s)", id, l)
		}
		return fmt.Sprintf("D%d", id)
	}

	m, err := demon.NewMonitor(demon.MonitorConfig{MinSupport: minsup, Alpha: alpha, Window: window})
	if err != nil {
		return err
	}
	for _, path := range files {
		rows, err := textio.ReadTransactionsFile(path)
		if err != nil {
			return err
		}
		rep, err := m.AddBlock(rows)
		if err != nil {
			return err
		}
		fmt.Printf("block %d: %d deviations in %v, similar to %d earlier blocks, extended %d sequences\n",
			rep.Block, rep.Deviations, rep.Elapsed.Round(100), rep.SimilarTo, rep.Extended)
	}

	fmt.Println("\nmaximal compact sequences:")
	for _, seq := range m.Patterns() {
		parts := make([]string, len(seq))
		for i, id := range seq {
			parts[i] = name(id)
		}
		fmt.Printf("  <%s>\n", strings.Join(parts, ", "))
		if cycle > 0 {
			if c := demon.CyclicPattern(seq, demon.BlockID(cycle)); c != nil {
				cparts := make([]string, len(c))
				for i, id := range c {
					cparts[i] = name(id)
				}
				fmt.Printf("    cyclic period %d: <%s>\n", cycle, strings.Join(cparts, ", "))
			}
		}
	}
	return nil
}
