package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRegimeBlocks produces 4 blocks: two from regime A, two from a
// disjoint regime B.
func writeRegimeBlocks(t *testing.T) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	block := func(base, n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "%d %d\n", base, base+1)
		}
		return sb.String()
	}
	contents := []string{block(0, 200), block(0, 200), block(100, 200), block(100, 200)}
	var paths []string
	for i, content := range contents {
		p := filepath.Join(dir, fmt.Sprintf("block-%d.txt", i+1))
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return dir, paths
}

func TestRunPatterns(t *testing.T) {
	_, paths := writeRegimeBlocks(t)
	if err := run(0.05, 0.01, 0, 0, "", paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunPatternsWithLabelsAndCycle(t *testing.T) {
	dir, paths := writeRegimeBlocks(t)
	labels := filepath.Join(dir, "labels.tsv")
	content := "block\tlabel\n1\tmon\n2\ttue\n3\twed\n4\tthu\n"
	if err := os.WriteFile(labels, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(0.05, 0.01, 0, 2, labels, paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunPatternsWindowed(t *testing.T) {
	_, paths := writeRegimeBlocks(t)
	if err := run(0.05, 0.01, 2, 0, "", paths); err != nil {
		t.Fatal(err)
	}
}

func TestRunPatternsErrors(t *testing.T) {
	_, paths := writeRegimeBlocks(t)
	if err := run(0, 0.01, 0, 0, "", paths); err == nil {
		t.Error("accepted κ = 0")
	}
	if err := run(0.05, 0, 0, 0, "", paths); err == nil {
		t.Error("accepted α = 0")
	}
	if err := run(0.05, 0.01, 0, 0, "/nonexistent.tsv", paths); err == nil {
		t.Error("accepted missing labels file")
	}
	if err := run(0.05, 0.01, 0, 0, "", []string{"/nonexistent"}); err == nil {
		t.Error("accepted missing block file")
	}
}

func TestLoadLabels(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "l.tsv")
	if err := os.WriteFile(p, []byte("block\tlabel\n3\thello world\nbad line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	labels, err := loadLabels(p)
	if err != nil {
		t.Fatal(err)
	}
	if labels[3] != "hello world" || len(labels) != 1 {
		t.Fatalf("labels = %v", labels)
	}
}
