package main

// End-to-end CLI tests: a tiny real run, the self-compare that must be
// clean, and the inflated-artifact path that must exit nonzero (the
// acceptance check for the regression gate).

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/demon-mining/demon/internal/obs"
	"github.com/demon-mining/demon/internal/perf"
)

func TestUsageAndList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}

	out.Reset()
	if code := run([]string{"list", "-short"}, &out, &errOut); code != 0 {
		t.Fatalf("list: exit %d\n%s", code, errOut.String())
	}
	for _, want := range []string{"miner/ecut/w1", "count/ecut", "serve/ingest"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output lacks %s:\n%s", want, out.String())
		}
	}
}

func TestRunCompareRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real counting workload")
	}
	prev := obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(prev)

	dir := t.TempDir()
	artPath := filepath.Join(dir, "BENCH_t.json")
	var out, errOut bytes.Buffer
	code := run([]string{"run", "-short", "-quiet", "-suite", "count/ecut",
		"-iterations", "1", "-number", "7", "-out", artPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run: exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "count/ecut") {
		t.Errorf("summary lacks the entry:\n%s", out.String())
	}

	art, err := perf.ReadArtifact(artPath)
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	if art.Number != 7 || len(art.Entries) != 1 {
		t.Fatalf("artifact = number %d, %d entries", art.Number, len(art.Entries))
	}

	// Self-compare must be clean and exit 0.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"compare", artPath, artPath}, &out, &errOut); code != 0 {
		t.Fatalf("self-compare: exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("self-compare output lacks PASS:\n%s", out.String())
	}

	// Synthetically inflate the hot path: compare must exit nonzero.
	art.Entries[0].NsPerOp *= 3
	art.Entries[0].MinNs *= 3
	for i := range art.Entries[0].IterNs {
		art.Entries[0].IterNs[i] *= 3
	}
	inflPath := filepath.Join(dir, "BENCH_inflated.json")
	if err := art.WriteFile(inflPath); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"compare", artPath, inflPath}, &out, &errOut); code != 1 {
		t.Fatalf("inflated compare: exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("inflated compare output lacks FAIL:\n%s", out.String())
	}
}

func TestCompareUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"compare", "one.json"}, &out, &errOut); code != 2 {
		t.Errorf("one operand: exit %d, want 2", code)
	}
	if code := run([]string{"compare", "missing-a.json", "missing-b.json"}, &out, &errOut); code != 2 {
		t.Errorf("missing files: exit %d, want 2", code)
	}

	// A schema we don't speak is a usage error, not a regression verdict.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	blob, _ := json.Marshal(map[string]any{"schema": perf.SchemaVersion + 100})
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"compare", bad, bad}, &out, &errOut); code != 2 {
		t.Errorf("future schema: exit %d, want 2", code)
	}
}
