// Command demon-perf is the performance-trajectory harness: it runs the
// pinned perf suite (counting strategies, all four miners at workers
// {1, GOMAXPROCS}, the proxysim monitoring workload, and a served
// end-to-end ingest) and emits a schema-versioned BENCH_<n>.json artifact,
// or judges two such artifacts against per-metric regression thresholds.
//
// Usage:
//
//	demon-perf run -out BENCH_9.json -number 9 -profile-dir profiles
//	demon-perf run -short -suite miner/ecut,count/ecut -iterations 3
//	demon-perf compare BENCH_8.json BENCH_9.json
//	demon-perf compare -time-threshold 0.5 OLD.json NEW.json
//	demon-perf list
//
// `run` prints a human summary and, with -out, writes the machine-readable
// artifact: ns/op (median and min over -iterations), allocs/op, bytes/op,
// ingest throughput, peak RSS, GC pause quantiles, per-entry obs-registry
// deltas, and — when -profile-dir is set — per-entry CPU profiles plus a
// run-wide heap profile parsed into top-N hotspot tables.
//
// `compare` exits 1 when any metric regresses beyond its threshold (see
// internal/perf/compare.go for the min/median dual gate), 0 otherwise.
// CI runs it against the committed previous BENCH_<n>.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/demon-mining/demon/internal/perf"
	"github.com/demon-mining/demon/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: demon-perf <run|compare|list> [flags]")
	fmt.Fprintln(stderr, "  run      run the pinned suite and emit a BENCH artifact")
	fmt.Fprintln(stderr, "  compare  judge NEW.json against OLD.json, exit 1 on regression")
	fmt.Fprintln(stderr, "  list     print the suite entries")
	fmt.Fprintln(stderr, "run 'demon-perf <cmd> -h' for the command's flags")
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "list":
		return cmdList(args[1:], stdout, stderr)
	case "-version", "--version":
		fmt.Fprintf(stdout, "demon-perf %s\n", version.Get())
		return 0
	default:
		fmt.Fprintf(stderr, "demon-perf: unknown command %q\n", args[0])
		return usage(stderr)
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("demon-perf run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write the JSON artifact to this file")
	profileDir := fs.String("profile-dir", "", "capture per-entry CPU profiles and a run heap profile into this directory, and embed hotspot tables")
	short := fs.Bool("short", false, "CI-sized datasets and iteration count")
	iterations := fs.Int("iterations", 0, "iterations per entry (default 5, 3 with -short)")
	scale := fs.Float64("scale", 1.0, "dataset scale factor")
	seed := fs.Int64("seed", 1, "data-generation seed")
	number := fs.Int("number", 0, "trajectory point to stamp (the <n> of BENCH_<n>.json)")
	topN := fs.Int("top", 5, "hotspot table size")
	suite := fs.String("suite", "all", "comma-separated entry names (see 'demon-perf list') or 'all'")
	quiet := fs.Bool("quiet", false, "suppress per-iteration progress on stderr")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintf(stdout, "demon-perf %s\n", version.Get())
		return 0
	}

	cfg := perf.Config{
		Scale:      *scale,
		Short:      *short,
		Iterations: *iterations,
		Seed:       *seed,
		TopN:       *topN,
		Number:     *number,
		ProfileDir: *profileDir,
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}
	if *suite != "all" && *suite != "" {
		cfg.Select = make(map[string]bool)
		for _, name := range strings.Split(*suite, ",") {
			cfg.Select[strings.TrimSpace(name)] = true
		}
	}

	art, err := perf.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "demon-perf:", err)
		return 1
	}
	if err := art.WriteText(stdout); err != nil {
		fmt.Fprintln(stderr, "demon-perf:", err)
		return 1
	}
	if *out != "" {
		if err := art.WriteFile(*out); err != nil {
			fmt.Fprintln(stderr, "demon-perf:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nartifact written to %s\n", *out)
	}
	return 0
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("demon-perf compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	th := perf.DefaultThresholds()
	fs.Float64Var(&th.Time, "time-threshold", th.Time, "fractional ns/op regression bound (scaled per entry)")
	fs.Float64Var(&th.Allocs, "alloc-threshold", th.Allocs, "fractional allocs/op regression bound")
	fs.Float64Var(&th.Bytes, "bytes-threshold", th.Bytes, "fractional bytes/op regression bound")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: demon-perf compare [flags] OLD.json NEW.json")
		return 2
	}
	oldA, err := perf.ReadArtifact(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "demon-perf:", err)
		return 2
	}
	newA, err := perf.ReadArtifact(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "demon-perf:", err)
		return 2
	}
	c, err := perf.Compare(oldA, newA, th)
	if err != nil {
		fmt.Fprintln(stderr, "demon-perf:", err)
		return 2
	}
	if err := c.WriteText(stdout, perf.EntriesByKey(newA)); err != nil {
		fmt.Fprintln(stderr, "demon-perf:", err)
		return 1
	}
	if !c.OK() {
		return 1
	}
	return 0
}

func cmdList(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("demon-perf list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	short := fs.Bool("short", false, "list the short-mode suite")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, e := range perf.Suite(perf.Config{Short: *short}) {
		fmt.Fprintln(stdout, e.Key())
	}
	return 0
}
